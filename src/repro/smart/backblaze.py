"""Adapter for Backblaze-style SMART snapshot CSVs.

The paper's dataset is proprietary, but the de-facto public benchmark
for drive-failure prediction is the Backblaze drive-stats corpus: one
CSV per day, one row per drive, with columns

    date, serial_number, model, capacity_bytes, failure,
    smart_<id>_normalized, smart_<id>_raw, ...

This module maps that schema onto the library's channel layout so real
Backblaze data (or anything exported in its shape) can flow through the
exact pipelines built for the synthetic fleet.  The SMART-id mapping
follows the standard attribute numbering:

    1   Raw Read Error Rate            RRER
    3   Spin Up Time                   SUT
    5   Reallocated Sectors Count      RSC (+ raw -> RSC_RAW)
    7   Seek Error Rate                SER
    9   Power On Hours                 POH
    187 Reported Uncorrectable Errors  RUE
    189 High Fly Writes                HFW
    194 Temperature Celsius            TC
    195 Hardware ECC Recovered         HER
    197 Current Pending Sector Count   CPSC (+ raw -> CPSC_RAW)

Backblaze samples daily rather than hourly; timestamps become hour
offsets from the earliest date (24h apart), and every downstream
component (change rates, voting windows) is cadence-agnostic as long as
intervals are expressed in hours.
"""

from __future__ import annotations

import csv
from datetime import date
from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from repro.smart.attributes import N_CHANNELS, channel_index
from repro.smart.drive import DriveRecord
from repro.utils.errors import IngestError

HOURS_PER_DAY = 24.0

#: Backblaze column name -> our channel abbreviation.
COLUMN_TO_CHANNEL: dict[str, str] = {
    "smart_1_normalized": "RRER",
    "smart_3_normalized": "SUT",
    "smart_5_normalized": "RSC",
    "smart_7_normalized": "SER",
    "smart_9_normalized": "POH",
    "smart_187_normalized": "RUE",
    "smart_189_normalized": "HFW",
    "smart_194_normalized": "TC",
    "smart_195_normalized": "HER",
    "smart_197_normalized": "CPSC",
    "smart_5_raw": "RSC_RAW",
    "smart_197_raw": "CPSC_RAW",
}

_REQUIRED_COLUMNS = ("date", "serial_number", "model", "failure")


def _parse_date(text: str, *, source: str, line: int) -> date:
    try:
        return date.fromisoformat(text)
    except ValueError as error:
        raise IngestError(
            f"bad date {text!r}: {error}",
            source=source, line=line, column="date",
        ) from None


def _parse_row(row: dict, *, source: str, line: int) -> tuple[date, np.ndarray]:
    """One snapshot row -> (day, channel vector); IngestError on bad cells."""
    day = _parse_date(row["date"], source=source, line=line)
    reading = np.full(N_CHANNELS, np.nan)
    for column, short in COLUMN_TO_CHANNEL.items():
        cell = row.get(column, "")
        if cell in ("", None):
            continue
        try:
            reading[channel_index(short)] = float(cell)
        except ValueError:
            raise IngestError(
                f"bad SMART value {cell!r}",
                source=source, line=line, column=column,
            ) from None
    return day, reading


class DriveLoadResult(list):
    """The drives loaded by a lenient ingest, plus what was skipped.

    Behaves exactly like ``list[DriveRecord]`` (all call sites keep
    working), with the skip ledger attached:

    Attributes:
        errors: One :class:`~repro.utils.errors.IngestError` per skipped
            row, each carrying ``source``/``line``/``column``.
    """

    def __init__(self, drives: Iterable[DriveRecord], errors: Sequence[IngestError]):
        super().__init__(drives)
        self.errors = tuple(errors)

    @property
    def n_skipped_rows(self) -> int:
        """How many malformed rows were skipped during the load."""
        return len(self.errors)


def read_backblaze_csv(
    paths: Union[str, Path, Sequence[Union[str, Path]]],
    *,
    family_from_model: bool = True,
    lenient: bool = False,
) -> list[DriveRecord]:
    """Load one or more Backblaze daily-snapshot CSVs into drive records.

    Args:
        paths: A single CSV path or a sequence of them (typically one
            per day); rows are merged per serial across all files.
        family_from_model: Use the ``model`` column as the drive family
            (the paper separates models per family); if False, every
            drive gets family ``"BB"``.
        lenient: Skip malformed rows (bad dates, unparseable SMART
            cells) instead of raising, and return a
            :class:`DriveLoadResult` whose ``errors`` attribute records
            every skipped row's location.  Missing required *columns*
            still raise — that is a wrong file, not a dirty row.

    A malformed cell raises :class:`~repro.utils.errors.IngestError`
    carrying the file, 1-based line number and offending column (it is
    a ``ValueError`` subclass, so existing handlers keep working).

    Failed drives take their failure time as the end of their last
    reported day; SMART columns outside the mapping are ignored, and
    mapped columns that are absent or empty load as NaN.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    per_drive: dict[str, dict] = {}
    skipped: list[IngestError] = []
    for path in paths:
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            missing = [c for c in _REQUIRED_COLUMNS if c not in (reader.fieldnames or [])]
            if missing:
                raise IngestError(
                    f"missing required columns {missing}",
                    source=str(path), line=1,
                )
            for line_number, row in enumerate(reader, start=2):
                try:
                    day, reading = _parse_row(
                        row, source=str(path), line=line_number
                    )
                except IngestError as error:
                    if not lenient:
                        raise
                    skipped.append(error)
                    continue
                serial = row["serial_number"]
                entry = per_drive.setdefault(
                    serial,
                    {"model": row["model"], "days": {}, "failed": False},
                )
                entry["days"][day] = reading
                if row["failure"] == "1":
                    entry["failed"] = True

    if not per_drive:
        return DriveLoadResult([], skipped) if lenient else []
    epoch = min(min(entry["days"]) for entry in per_drive.values())

    drives = []
    for serial, entry in sorted(per_drive.items()):
        days = sorted(entry["days"])
        hours = np.array(
            [(day - epoch).days * HOURS_PER_DAY for day in days]
        )
        values = np.vstack([entry["days"][day] for day in days])
        failure_hour = None
        if entry["failed"]:
            # The drive died sometime during its last reported day.
            failure_hour = float(hours[-1] + HOURS_PER_DAY)
        drives.append(
            DriveRecord(
                serial=serial,
                family=entry["model"] if family_from_model else "BB",
                failed=entry["failed"],
                hours=hours,
                values=values,
                failure_hour=failure_hour,
            )
        )
    return DriveLoadResult(drives, skipped) if lenient else drives


def write_backblaze_csv(
    path: Union[str, Path],
    drives: Iterable[DriveRecord],
    *,
    start: date = date(2024, 1, 1),
) -> int:
    """Export drives to the Backblaze daily-snapshot schema (one file).

    Sample hours are binned to days relative to each drive's first
    sample (sub-daily samples collapse to the day's last reading, since
    the Backblaze corpus is daily).  Returns the number of rows written.
    Useful for round-trip testing and for feeding our synthetic fleets
    to external Backblaze-oriented tooling.
    """
    path = Path(path)
    header = list(_REQUIRED_COLUMNS[:3]) + ["capacity_bytes", "failure"] + list(
        COLUMN_TO_CHANNEL
    )
    rows_written = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for drive in drives:
            if drive.n_samples == 0:
                continue
            day_of = ((drive.hours - drive.hours[0]) // HOURS_PER_DAY).astype(int)
            last_day = int(day_of[-1])
            for day in sorted(set(day_of.tolist())):
                index = int(np.nonzero(day_of == day)[0][-1])
                reading = drive.values[index]
                failure_flag = int(drive.failed and day == last_day)
                cells = [
                    (start.fromordinal(start.toordinal() + day)).isoformat(),
                    drive.serial,
                    drive.family,
                    "",
                    failure_flag,
                ]
                for short in COLUMN_TO_CHANNEL.values():
                    value = reading[channel_index(short)]
                    cells.append("" if np.isnan(value) else repr(float(value)))
                writer.writerow(cells)
                rows_written += 1
    return rows_written
