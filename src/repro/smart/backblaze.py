"""Adapter for Backblaze-style SMART snapshot CSVs.

The paper's dataset is proprietary, but the de-facto public benchmark
for drive-failure prediction is the Backblaze drive-stats corpus: one
CSV per day, one row per drive, with columns

    date, serial_number, model, capacity_bytes, failure,
    smart_<id>_normalized, smart_<id>_raw, ...

This module maps that schema onto the library's channel layout so real
Backblaze data (or anything exported in its shape) can flow through the
exact pipelines built for the synthetic fleet.  The SMART-id mapping
follows the standard attribute numbering:

    1   Raw Read Error Rate            RRER
    3   Spin Up Time                   SUT
    5   Reallocated Sectors Count      RSC (+ raw -> RSC_RAW)
    7   Seek Error Rate                SER
    9   Power On Hours                 POH
    187 Reported Uncorrectable Errors  RUE
    189 High Fly Writes                HFW
    194 Temperature Celsius            TC
    195 Hardware ECC Recovered         HER
    197 Current Pending Sector Count   CPSC (+ raw -> CPSC_RAW)

Backblaze samples daily rather than hourly; timestamps become hour
offsets from the earliest date (24h apart), and every downstream
component (change rates, voting windows) is cadence-agnostic as long as
intervals are expressed in hours.

Two consumers share the streaming core here (:class:`BackblazeReader`
yields one parsed row at a time, never materializing a file):
:func:`read_backblaze_csv` for in-memory loads of one or a few files,
and :mod:`repro.smart.ingest` for chunked, parallel, out-of-core ingest
of whole quarterly dumps.  ``docs/datasets.md`` is the guide.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, TextIO, Union

import numpy as np

from repro.smart.attributes import N_CHANNELS, BY_SHORT, channel_index
from repro.smart.drive import DriveRecord
from repro.utils.errors import IngestError

HOURS_PER_DAY = 24.0

#: Backblaze column name -> our channel abbreviation.
COLUMN_TO_CHANNEL: dict[str, str] = {
    "smart_1_normalized": "RRER",
    "smart_3_normalized": "SUT",
    "smart_5_normalized": "RSC",
    "smart_7_normalized": "SER",
    "smart_9_normalized": "POH",
    "smart_187_normalized": "RUE",
    "smart_189_normalized": "HFW",
    "smart_194_normalized": "TC",
    "smart_195_normalized": "HER",
    "smart_197_normalized": "CPSC",
    "smart_5_raw": "RSC_RAW",
    "smart_197_raw": "CPSC_RAW",
}

_REQUIRED_COLUMNS = ("date", "serial_number", "model", "failure")

#: How a failed drive's failure hour is placed relative to its last
#: reported day.  ``day-end``: the drive died sometime during its last
#: reported day, so the failure lands at the end of that day (the
#: historical default — lead times are >= one day).  ``last-sample``:
#: the failure lands on the last sample itself (lead time zero), which
#: is what sub-day failed-window protocols (the paper's 12h window)
#: need on daily-cadence data.
FAILURE_LABELS = ("day-end", "last-sample")


def _parse_date(text: str, *, source: str, line: int) -> date:
    try:
        return date.fromisoformat(text)
    except ValueError as error:
        raise IngestError(
            f"bad date {text!r}: {error}",
            source=source, line=line, column="date",
        ) from None


@dataclass(frozen=True)
class BackblazeRow:
    """One parsed daily-snapshot row.

    ``day`` is the calendar day as an ordinal (``date.toordinal``) so
    rows aggregate with integer arithmetic; ``failed`` is True when the
    row's ``failure`` column flagged the drive's death on this day.
    """

    serial: str
    model: str
    day: int
    failed: bool
    reading: np.ndarray


class BackblazeReader:
    """Streaming reader over one Backblaze daily-snapshot CSV.

    Wraps an open text handle (a plain file, or a zip member) and yields
    one :class:`BackblazeRow` at a time — the file is never materialized,
    so memory stays O(1) in the file size.  Provenance surfaces in two
    ledgers:

    * ``errors`` — one :class:`~repro.utils.errors.IngestError` per
      malformed row skipped (``lenient=True``) with file/line/column;
      with ``lenient=False`` the first malformed row raises instead;
    * ``missing_columns`` — mapped SMART columns absent from this file's
      header entirely; every row of those channels loads as NaN, which
      downstream consumers should know is a schema gap, not noise.

    Missing required *columns* always raise — that is a wrong file, not
    a dirty row.
    """

    def __init__(self, handle: TextIO, *, source: str, lenient: bool = False):
        self._reader = csv.DictReader(handle)
        self.source = str(source)
        self.lenient = bool(lenient)
        self.errors: list[IngestError] = []
        fields = self._reader.fieldnames or []
        missing = [c for c in _REQUIRED_COLUMNS if c not in fields]
        if missing:
            raise IngestError(
                f"missing required columns {missing}",
                source=self.source, line=1,
            )
        self.missing_columns: tuple[str, ...] = tuple(
            column for column in COLUMN_TO_CHANNEL if column not in fields
        )

    def _parse_row(self, row: dict, line: int) -> BackblazeRow:
        day = _parse_date(row["date"], source=self.source, line=line)
        reading = np.full(N_CHANNELS, np.nan)
        for column, short in COLUMN_TO_CHANNEL.items():
            cell = row.get(column, "")
            if cell in ("", None):
                continue
            try:
                reading[channel_index(short)] = float(cell)
            except ValueError:
                raise IngestError(
                    f"bad SMART value {cell!r}",
                    source=self.source, line=line, column=column,
                ) from None
        return BackblazeRow(
            serial=row["serial_number"],
            model=row["model"],
            day=day.toordinal(),
            failed=row["failure"] == "1",
            reading=reading,
        )

    def __iter__(self) -> Iterator[BackblazeRow]:
        for line_number, row in enumerate(self._reader, start=2):
            try:
                yield self._parse_row(row, line_number)
            except IngestError as error:
                if not self.lenient:
                    raise
                self.errors.append(error)


def model_matches(model: str, models: Sequence[str]) -> bool:
    """Per-model filter predicate: empty filter keeps everything.

    A drive matches when its ``model`` string starts with any of the
    requested prefixes, so ``("ST4000",)`` keeps every ST4000 variant.
    """
    if not models:
        return True
    return any(model.startswith(prefix) for prefix in models)


def build_drive_record(
    serial: str,
    family: str,
    day_ordinals: np.ndarray,
    values: np.ndarray,
    *,
    failed: bool,
    epoch_ordinal: int,
    failure_window_days: Optional[int] = None,
    failure_label: str = "day-end",
) -> DriveRecord:
    """Assemble one drive from per-day rows (shared by both ingest paths).

    ``day_ordinals`` must be sorted strictly increasing.  Failed drives
    get their ``failure_hour`` per ``failure_label`` (see
    :data:`FAILURE_LABELS`), and — when ``failure_window_days`` is set —
    their history trimmed to the last that-many days before failure,
    the paper's bounded failed-history protocol (its drives carry at
    most 20 days of pre-failure samples).
    """
    if failure_label not in FAILURE_LABELS:
        raise ValueError(
            f"failure_label must be one of {FAILURE_LABELS}, got {failure_label!r}"
        )
    hours = (day_ordinals - epoch_ordinal).astype(float) * HOURS_PER_DAY
    failure_hour = None
    if failed:
        failure_hour = float(hours[-1])
        if failure_label == "day-end":
            # The drive died sometime during its last reported day.
            failure_hour += HOURS_PER_DAY
        if failure_window_days is not None:
            keep = hours > failure_hour - failure_window_days * HOURS_PER_DAY
            hours = hours[keep]
            values = values[keep]
    return DriveRecord(
        serial=serial,
        family=family,
        failed=failed,
        hours=hours,
        values=np.asarray(values, dtype=float),
        failure_hour=failure_hour,
    )


class DriveTable:
    """Per-serial accumulator of streamed rows (last write wins per day).

    The shared aggregation behind :func:`read_backblaze_csv` and the
    chunked ingest workers: feed it :class:`BackblazeRow` instances in
    file order, then :meth:`build` the drives (or export the columnar
    arrays a chunk part stores).
    """

    def __init__(self):
        self._drives: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._drives)

    @property
    def n_rows(self) -> int:
        return sum(len(entry["days"]) for entry in self._drives.values())

    def add(self, row: BackblazeRow) -> None:
        entry = self._drives.setdefault(
            row.serial, {"model": row.model, "days": {}, "failed_day": None}
        )
        entry["days"][row.day] = row.reading
        if row.failed:
            failed_day = entry["failed_day"]
            entry["failed_day"] = (
                row.day if failed_day is None else max(failed_day, row.day)
            )

    def epoch_ordinal(self) -> Optional[int]:
        """The earliest observed day across all accumulated drives."""
        if not self._drives:
            return None
        return min(min(entry["days"]) for entry in self._drives.values())

    def items(self) -> Iterator[tuple[str, dict]]:
        """``(serial, entry)`` pairs sorted by serial."""
        return iter(sorted(self._drives.items()))

    def columnar(self) -> dict[str, np.ndarray]:
        """Serial-sorted columnar arrays (the chunk-part layout).

        Keys: ``serials`` / ``models`` / ``failed_day`` (one element per
        drive, ``-1`` when the drive never flagged failure) plus the
        row-major ``row_serial`` (index into ``serials``), ``row_day``
        (ordinals, sorted within each drive) and ``row_values``.
        """
        serials, models, failed_days = [], [], []
        row_serial, row_day, row_values = [], [], []
        for index, (serial, entry) in enumerate(self.items()):
            serials.append(serial)
            models.append(entry["model"])
            failed_days.append(-1 if entry["failed_day"] is None else entry["failed_day"])
            for day in sorted(entry["days"]):
                row_serial.append(index)
                row_day.append(day)
                row_values.append(entry["days"][day])
        return {
            "serials": np.array(serials, dtype=np.str_),
            "models": np.array(models, dtype=np.str_),
            "failed_day": np.array(failed_days, dtype=np.int64),
            "row_serial": np.array(row_serial, dtype=np.int64),
            "row_day": np.array(row_day, dtype=np.int64),
            "row_values": (
                np.vstack(row_values) if row_values
                else np.empty((0, N_CHANNELS))
            ),
        }

    def build(
        self,
        *,
        family_from_model: bool = True,
        failure_window_days: Optional[int] = None,
        failure_label: str = "day-end",
    ) -> list[DriveRecord]:
        """Assemble the accumulated drives, sorted by serial."""
        epoch = self.epoch_ordinal()
        drives = []
        for serial, entry in self.items():
            days = np.array(sorted(entry["days"]), dtype=np.int64)
            values = np.vstack([entry["days"][day] for day in days])
            drives.append(
                build_drive_record(
                    serial,
                    entry["model"] if family_from_model else "BB",
                    days,
                    values,
                    failed=entry["failed_day"] is not None,
                    epoch_ordinal=epoch,
                    failure_window_days=failure_window_days,
                    failure_label=failure_label,
                )
            )
        return drives


class DriveLoadResult(list):
    """The drives loaded by a lenient ingest, plus what was skipped.

    Behaves exactly like ``list[DriveRecord]`` (all call sites keep
    working), with the skip ledger attached:

    Attributes:
        errors: One :class:`~repro.utils.errors.IngestError` per skipped
            row, each carrying ``source``/``line``/``column``.
        missing_columns: ``{source: (column, ...)}`` — mapped SMART
            columns absent from a file's header entirely (those channels
            load as NaN for every row of that file).  Only files with at
            least one absent mapped column appear.
    """

    def __init__(
        self,
        drives: Iterable[DriveRecord],
        errors: Sequence[IngestError],
        missing_columns: Optional[dict[str, tuple[str, ...]]] = None,
    ):
        super().__init__(drives)
        self.errors = tuple(errors)
        self.missing_columns = dict(missing_columns or {})

    @property
    def n_skipped_rows(self) -> int:
        """How many malformed rows were skipped during the load."""
        return len(self.errors)


def read_backblaze_csv(
    paths: Union[str, Path, Sequence[Union[str, Path]]],
    *,
    family_from_model: bool = True,
    lenient: bool = False,
    models: Sequence[str] = (),
    failure_window_days: Optional[int] = None,
    failure_label: str = "day-end",
) -> list[DriveRecord]:
    """Load one or more Backblaze daily-snapshot CSVs into drive records.

    Args:
        paths: A single CSV path or a sequence of them (typically one
            per day); rows are merged per serial across all files.
            Rows stream through :class:`BackblazeReader` one at a time —
            only the per-drive aggregates are held, never a whole file.
            For directories, zips and out-of-core scale, use
            :func:`repro.smart.ingest.ingest_backblaze`.
        family_from_model: Use the ``model`` column as the drive family
            (the paper separates models per family); if False, every
            drive gets family ``"BB"``.
        lenient: Skip malformed rows (bad dates, unparseable SMART
            cells) instead of raising, and return a
            :class:`DriveLoadResult` whose ``errors`` attribute records
            every skipped row's location and whose ``missing_columns``
            ledger names mapped SMART columns a file does not expose at
            all.  Missing required *columns* still raise — that is a
            wrong file, not a dirty row.
        models: Optional per-model filter — keep only drives whose
            ``model`` starts with one of these prefixes (the hour epoch
            is computed after filtering, mirroring the paper's per-model
            datasets).
        failure_window_days: When set, trim each failed drive's history
            to the last that-many days before failure (the paper's
            20-day failed-history bound).
        failure_label: Where a failed drive's ``failure_hour`` lands —
            see :data:`FAILURE_LABELS`.

    A malformed cell raises :class:`~repro.utils.errors.IngestError`
    carrying the file, 1-based line number and offending column (it is
    a ``ValueError`` subclass, so existing handlers keep working).

    SMART columns outside the mapping are ignored, and mapped columns
    that are absent or empty load as NaN.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    table = DriveTable()
    skipped: list[IngestError] = []
    missing_columns: dict[str, tuple[str, ...]] = {}
    for path in paths:
        path = Path(path)
        with path.open(newline="") as handle:
            reader = BackblazeReader(handle, source=str(path), lenient=lenient)
            if reader.missing_columns:
                missing_columns[str(path)] = reader.missing_columns
            for row in reader:
                if model_matches(row.model, models):
                    table.add(row)
            skipped.extend(reader.errors)

    drives = table.build(
        family_from_model=family_from_model,
        failure_window_days=failure_window_days,
        failure_label=failure_label,
    )
    if lenient:
        return DriveLoadResult(drives, skipped, missing_columns)
    return drives


def write_backblaze_csv(
    path: Union[str, Path],
    drives: Iterable[DriveRecord],
    *,
    start: date = date(2024, 1, 1),
) -> int:
    """Export drives to the Backblaze daily-snapshot schema (one file).

    Sample hours are binned to days relative to each drive's first
    sample (sub-daily samples collapse to the day's last reading, since
    the Backblaze corpus is daily).  Returns the number of rows written.
    Useful for round-trip testing and for feeding our synthetic fleets
    to external Backblaze-oriented tooling.
    """
    path = Path(path)
    header = list(_REQUIRED_COLUMNS[:3]) + ["capacity_bytes", "failure"] + list(
        COLUMN_TO_CHANNEL
    )
    rows_written = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for drive in drives:
            if drive.n_samples == 0:
                continue
            day_of = ((drive.hours - drive.hours[0]) // HOURS_PER_DAY).astype(int)
            last_day = int(day_of[-1])
            for day in sorted(set(day_of.tolist())):
                index = int(np.nonzero(day_of == day)[0][-1])
                reading = drive.values[index]
                failure_flag = int(drive.failed and day == last_day)
                cells = [
                    (start.fromordinal(start.toordinal() + day)).isoformat(),
                    drive.serial,
                    drive.family,
                    "",
                    failure_flag,
                ]
                for short in COLUMN_TO_CHANNEL.values():
                    value = reading[channel_index(short)]
                    cells.append("" if np.isnan(value) else repr(float(value)))
                writer.writerow(cells)
                rows_written += 1
    return rows_written


def render_backblaze_mapping_table() -> str:
    """The docs/paper_mapping.md attribute-mapping table, from the code.

    One row per paper channel: which Backblaze column feeds it (or that
    no public column does), regenerated from :data:`COLUMN_TO_CHANNEL`
    so the documentation cannot drift from the adapter.
    """
    by_short = {short: column for column, short in COLUMN_TO_CHANNEL.items()}
    lines = [
        "| Paper channel | Attribute | Backblaze column | Notes |",
        "|---|---|---|---|",
    ]
    notes = {
        "RUE": "SMART 187; absent on some models — ledgered as a missing column",
        "HFW": "SMART 189; absent on some models — ledgered as a missing column",
        "HER": "SMART 195; vendor-specific, sparse on modern fleets",
        "RSC_RAW": "raw counter (higher is worse)",
        "CPSC_RAW": "raw counter (higher is worse)",
    }
    for spec in sorted(BY_SHORT.values(), key=lambda s: s.index):
        column = by_short.get(spec.short, "—")
        note = notes.get(spec.short, "")
        lines.append(
            f"| `{spec.short}` | {spec.name} | `{column}` | {note} |"
        )
    return "\n".join(lines)
