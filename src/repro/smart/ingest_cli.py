"""``repro-smart``: ingest Backblaze dumps and describe registry datasets.

Subcommands:

* ``ingest`` — run the chunked, resumable, out-of-core ingest of a
  Backblaze dump (directory, zip or single CSV) into a columnar store;
* ``datasets`` — list the registered dataset kinds, or describe a
  registry handle (drive counts per family, ingest provenance).

Examples::

    repro-smart ingest data_Q1_2024/ --out q1-store --models ST4000DM000
    repro-smart ingest dump.zip --out store --jobs 4 --failure-window-days 20
    repro-smart datasets
    repro-smart datasets backblaze:q1-store
    repro-smart datasets 'synthetic:default?w_good=200&seed=11'

The full walkthrough (download to experiment grid) is
``docs/datasets.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.smart.backblaze import FAILURE_LABELS
from repro.smart.ingest import IngestConfig, ingest_backblaze
from repro.smart.registry import describe, registered_kinds
from repro.utils.errors import IngestError, IngestInterrupted
from repro.utils.tables import AsciiTable


def _add_ingest(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "ingest",
        help="chunked out-of-core ingest of a Backblaze dump into a "
        "columnar store (resumable; re-running a complete store is a "
        "no-op)",
    )
    parser.add_argument(
        "source", type=Path,
        help="the dump: a directory of daily CSVs, a .zip of one, or a "
        "single CSV file",
    )
    parser.add_argument(
        "--out", required=True, type=Path,
        help="store directory to create (manifest.json + column .npy files)",
    )
    parser.add_argument(
        "--models", nargs="*", default=[], metavar="PREFIX",
        help="keep only drives whose model starts with one of these "
        "prefixes (default: all models)",
    )
    parser.add_argument(
        "--failure-window-days", type=int, default=None, metavar="N",
        help="trim failed drives to their last N days before failure "
        "(the paper keeps at most 20)",
    )
    parser.add_argument(
        "--failure-label", choices=FAILURE_LABELS, default="day-end",
        help="where a failed drive's failure hour lands relative to its "
        "last reported day (default: day-end)",
    )
    parser.add_argument(
        "--family", choices=("model", "none"), default="model",
        help="drive family labels: the model column (default) or a "
        "single 'BB' family",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on the first malformed row instead of skipping it "
        "into the manifest's ledger",
    )
    parser.add_argument(
        "--chunk-files", type=int, default=8, metavar="K",
        help="day files per parse chunk — the parallelism, checkpoint "
        "and memory granule (default: 8)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse worker processes (default: REPRO_N_JOBS or serial; "
        "0 = all cores)",
    )


def _add_datasets(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "datasets",
        help="list dataset kinds, or describe a registry handle",
    )
    parser.add_argument(
        "handle", nargs="?", default=None,
        help="a dataset handle ('kind:path?param=value'); omit to list "
        "the registered kinds",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the description as JSON instead of a table",
    )


def _run_ingest(args: argparse.Namespace) -> int:
    config = IngestConfig(
        source=str(args.source),
        out=str(args.out),
        models=tuple(args.models),
        family_from_model=args.family == "model",
        failure_window_days=args.failure_window_days,
        failure_label=args.failure_label,
        lenient=not args.strict,
        chunk_files=args.chunk_files,
        n_jobs=args.jobs,
    )
    try:
        manifest = ingest_backblaze(config)
    except (IngestError, IngestInterrupted, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    totals = manifest["totals"]
    print(
        f"ingested {totals['n_files']} files / {totals['n_rows']} rows "
        f"into {args.out}: {totals['n_drives']} drives "
        f"({totals['n_failed']} failed), epoch {totals['epoch_day']}"
    )
    if totals["n_filtered_rows"]:
        print(f"  {totals['n_filtered_rows']} rows dropped by --models filter")
    if totals["n_skipped_rows"]:
        print(
            f"  {totals['n_skipped_rows']} malformed rows skipped "
            "(provenance in manifest.json 'errors')"
        )
    for source, columns in manifest["missing_columns"].items():
        print(f"  {source}: missing columns {', '.join(columns)} (NaN-filled)")
    print(
        f"run experiments on it with: repro-experiments --dataset "
        f"backblaze:{args.out}"
    )
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    if args.handle is None:
        print("registered dataset kinds:")
        for kind in registered_kinds():
            print(f"  {kind}")
        print(
            "\ndescribe one with: repro-smart datasets "
            "'kind:path?param=value' (see docs/datasets.md)"
        )
        return 0
    try:
        description = describe(args.handle)
    except (IngestError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0
    print(f"handle:  {description['handle']}")
    print(f"kind:    {description['kind']}"
          f" ({'static' if description['static'] else 'generator'})")
    print(f"drives:  {description['n_drives']} "
          f"({description['n_failed']} failed)")
    table = AsciiTable(["Family", "Good", "Failed"])
    for family in sorted(description["families"]):
        counts = description["families"][family]
        table.add_row([family, str(counts["good"]), str(counts["failed"])])
    print(table.render())
    if "ingest_totals" in description:
        totals = description["ingest_totals"]
        print(
            f"ingest:  {totals['n_rows']} rows from {totals['n_files']} "
            f"files, {totals['n_skipped_rows']} skipped, "
            f"{totals['n_filtered_rows']} filtered, "
            f"epoch {totals['epoch_day']}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-smart",
        description="Ingest Backblaze dumps and describe registry datasets.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_ingest(subparsers)
    _add_datasets(subparsers)
    args = parser.parse_args(argv)
    if args.command == "ingest":
        return _run_ingest(args)
    return _run_datasets(args)


if __name__ == "__main__":
    sys.exit(main())
