"""The dataset registry: one handle grammar for synthetic and real fleets.

Every dataset the experiment grid can run on is named by a **handle**:

    kind:path?param=value&param=value&seed=N

resolving through the ``(path | generator, params, seed) → dataset``
contract: for a *static* dataset the path identifies the content (a
Backblaze store or CSV on disk); for a *generator* dataset the path
names the generator and the params + seed determine the content
exactly.  Two calls with the same handle return the same drives, so a
handle is sufficient provenance to reproduce any experiment — it is
what ``repro-experiments --dataset`` accepts, what
``run_experiment_grid`` records in its checkpoint guard cell, and what
``repro-smart datasets`` describes.

Built-in kinds:

* ``synthetic:default`` — the paper-shaped two-family fleet from
  :class:`~repro.smart.generator.FleetGenerator`; params are the
  :func:`~repro.smart.generator.default_fleet_config` knobs
  (``w_good``/``w_failed``/``q_good``/``q_failed``/``collection_days``)
  plus ``seed``.
* ``backblaze:<path>`` — real traces: a completed ingest store
  (directory with ``manifest.json``), or a raw CSV file / directory /
  zip loaded in-memory; params mirror
  :func:`~repro.smart.ingest.load_backblaze` (``models`` is
  ``+``-separated prefixes).
* ``fleet-csv:<path>`` — the library's native long-format CSV
  (:func:`~repro.smart.io.read_fleet_csv`).

:func:`register_loader` adds project-local kinds without touching this
module.  ``docs/datasets.md`` is the guide.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.smart.dataset import SmartDataset
from repro.smart.generator import default_fleet_config
from repro.smart.ingest import load_backblaze, load_store, read_manifest
from repro.smart.io import read_fleet_csv

#: Handle params interpreted as integers by the built-in loaders.
_INT_PARAMS = {
    "w_good", "w_failed", "q_good", "q_failed", "collection_days",
    "failure_window_days",
}

#: Handle params interpreted as booleans ("1"/"true"/"0"/"false").
_BOOL_PARAMS = {"family_from_model", "lenient"}

#: Dataset kinds whose content is determined by params + seed, not by
#: bytes on disk (the "generator" side of the registry contract).
GENERATOR_KINDS = {"synthetic"}


@dataclass(frozen=True)
class DatasetSpec:
    """A parsed dataset handle (hashable, canonical).

    ``params`` is a sorted tuple of ``(key, value)`` string pairs —
    sorted so two spellings of the same handle compare and hash equal;
    ``seed`` is split out because only generator kinds may carry one.
    """

    kind: str
    path: str
    params: tuple[tuple[str, str], ...] = ()
    seed: Optional[int] = None

    def handle(self) -> str:
        """The canonical handle string (parses back to an equal spec)."""
        query = list(self.params)
        if self.seed is not None:
            query.append(("seed", str(self.seed)))
        text = f"{self.kind}:{self.path}"
        if query:
            text += "?" + urllib.parse.urlencode(query)
        return text

    def param_dict(self) -> dict[str, object]:
        """Params decoded to their loader types (ints, bools, strings)."""
        decoded: dict[str, object] = {}
        for key, value in self.params:
            if key in _INT_PARAMS:
                decoded[key] = int(value)
            elif key in _BOOL_PARAMS:
                if value.lower() not in ("0", "1", "true", "false"):
                    raise ValueError(
                        f"dataset param {key!r} must be a boolean, got {value!r}"
                    )
                decoded[key] = value.lower() in ("1", "true")
            else:
                decoded[key] = value
        return decoded


def parse_handle(handle: Union[str, DatasetSpec]) -> DatasetSpec:
    """Parse ``kind:path?params`` into a canonical :class:`DatasetSpec`.

    The query string follows URL conventions (``&``-separated ``k=v``,
    percent-escapes honoured); ``seed=N`` is pulled out of the params
    and only legal for generator kinds — a seed on a static dataset is
    a contract violation (the bytes on disk already fix the content),
    reported as ``ValueError``.
    """
    if isinstance(handle, DatasetSpec):
        return handle
    text = str(handle).strip()
    if ":" not in text:
        raise ValueError(
            f"dataset handle {text!r} has no kind — expected "
            "'kind:path?param=value', e.g. 'synthetic:default?seed=7'"
        )
    kind, rest = text.split(":", 1)
    kind = kind.strip().lower()
    if not kind:
        raise ValueError(f"dataset handle {text!r} has an empty kind")
    path, _, query = rest.partition("?")
    if not path:
        raise ValueError(f"dataset handle {text!r} has an empty path")
    params: list[tuple[str, str]] = []
    seed: Optional[int] = None
    for key, value in urllib.parse.parse_qsl(query, keep_blank_values=True):
        if key == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise ValueError(
                    f"dataset handle {text!r}: seed must be an integer, "
                    f"got {value!r}"
                ) from None
        else:
            params.append((key, value))
    if seed is not None and kind not in GENERATOR_KINDS:
        raise ValueError(
            f"dataset handle {text!r}: kind {kind!r} is a static dataset "
            "(its path identifies the content); seed is only meaningful "
            f"for generator kinds {sorted(GENERATOR_KINDS)}"
        )
    return DatasetSpec(kind=kind, path=path, params=tuple(sorted(params)), seed=seed)


def canonical_handle(handle: Union[str, DatasetSpec]) -> str:
    """The canonical string form of a handle (stable across spellings)."""
    return parse_handle(handle).handle()


# -- built-in loaders ---------------------------------------------------------

def _load_synthetic(spec: DatasetSpec) -> SmartDataset:
    params = spec.param_dict()
    unknown = set(params) - {
        "w_good", "w_failed", "q_good", "q_failed", "collection_days",
    }
    if unknown:
        raise ValueError(
            f"synthetic dataset params {sorted(unknown)} not recognised"
        )
    if spec.path != "default":
        raise ValueError(
            f"unknown synthetic generator {spec.path!r}; available: 'default'"
        )
    config = default_fleet_config(
        **params, **({} if spec.seed is None else {"seed": spec.seed})
    )
    return SmartDataset.generate(config)


def _load_backblaze(spec: DatasetSpec) -> SmartDataset:
    from pathlib import Path

    params = spec.param_dict()
    models = tuple(m for m in str(params.pop("models", "")).split("+") if m)
    unknown = set(params) - {
        "family_from_model", "failure_window_days", "failure_label", "lenient",
    }
    if unknown:
        raise ValueError(
            f"backblaze dataset params {sorted(unknown)} not recognised"
        )
    path = Path(spec.path)
    if (path / "manifest.json").is_file():
        if models or params:
            raise ValueError(
                f"{spec.path} is a completed ingest store; filtering and "
                "labeling params were fixed at ingest time (see its "
                "manifest) and cannot be overridden at load time"
            )
        return load_store(path)
    return load_backblaze(path, models=models, **params)


def _load_fleet_csv(spec: DatasetSpec) -> SmartDataset:
    if spec.params:
        raise ValueError(
            f"fleet-csv datasets take no params, got {dict(spec.params)}"
        )
    return SmartDataset(read_fleet_csv(spec.path))


_LOADERS: dict[str, Callable[[DatasetSpec], SmartDataset]] = {
    "synthetic": _load_synthetic,
    "backblaze": _load_backblaze,
    "fleet-csv": _load_fleet_csv,
}

#: Resolved datasets, keyed by canonical handle.  Deliberately tiny:
#: the grid resolves the same handle once per run, not once per cell.
_CACHE: dict[str, SmartDataset] = {}
_CACHE_LIMIT = 4


def register_loader(
    kind: str,
    loader: Callable[[DatasetSpec], SmartDataset],
    *,
    generator: bool = False,
) -> None:
    """Register a project-local dataset kind.

    ``loader`` receives the parsed :class:`DatasetSpec` and returns a
    :class:`SmartDataset`.  ``generator=True`` marks the kind as
    seed-bearing (params + seed determine content); static kinds reject
    seeds at parse time.
    """
    kind = str(kind).strip().lower()
    if not kind:
        raise ValueError("dataset kind must be non-empty")
    _LOADERS[kind] = loader
    if generator:
        GENERATOR_KINDS.add(kind)
    elif kind in GENERATOR_KINDS:
        GENERATOR_KINDS.discard(kind)
    _CACHE.clear()


def registered_kinds() -> list[str]:
    """Registered dataset kinds, sorted."""
    return sorted(_LOADERS)


def resolve(handle: Union[str, DatasetSpec]) -> SmartDataset:
    """The dataset a handle names (cached by canonical handle).

    The registry contract in one line: same handle, same drives.  A
    small cache keeps repeated resolutions of the same handle (the grid
    runner, a CLI describe) from re-reading the store.
    """
    spec = parse_handle(handle)
    try:
        loader = _LOADERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown dataset kind {spec.kind!r}; registered: "
            f"{registered_kinds()}"
        ) from None
    key = spec.handle()
    if key in _CACHE:
        return _CACHE[key]
    dataset = loader(spec)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = dataset
    return dataset


def describe(handle: Union[str, DatasetSpec]) -> dict:
    """A JSON-able description of a handle's dataset (for the CLI).

    Resolves the dataset and reports the canonical handle, per-family
    good/failed counts, totals — and, for completed ingest stores, the
    manifest's provenance totals (skipped rows, missing columns).
    """
    from pathlib import Path

    spec = parse_handle(handle)
    dataset = resolve(spec)
    description: dict = {
        "handle": spec.handle(),
        "kind": spec.kind,
        "static": spec.kind not in GENERATOR_KINDS,
        "n_drives": len(dataset.drives),
        "n_failed": len(dataset.failed_drives),
        "families": dataset.summary(),
    }
    if spec.kind == "backblaze":
        store = Path(spec.path)
        if (store / "manifest.json").is_file():
            totals = read_manifest(store)["totals"]
            description["ingest_totals"] = totals
    return description
