"""CSV round-trip for fleets.

Uses a Backblaze-style long format — one row per (drive, sample) — so a
synthesised fleet can be persisted, inspected with standard tools, and
reloaded; real SMART dumps in the same column layout load through the
same reader.

Columns: ``serial, family, failed, failure_hour, hour`` followed by one
column per channel in :data:`repro.smart.attributes.CHANNELS` order
(named by abbreviation).  Missing readings serialise as empty cells.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.smart.attributes import N_CHANNELS, channel_shorts
from repro.smart.drive import DriveRecord

_FIXED_COLUMNS = ["serial", "family", "failed", "failure_hour", "hour"]


def write_fleet_csv(path: Union[str, Path], drives: Iterable[DriveRecord]) -> int:
    """Write ``drives`` to ``path``; returns the number of rows written."""
    path = Path(path)
    rows_written = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIXED_COLUMNS + channel_shorts())
        for drive in drives:
            failure = "" if drive.failure_hour is None else repr(float(drive.failure_hour))
            prefix = [drive.serial, drive.family, int(drive.failed), failure]
            for hour, reading in zip(drive.hours, drive.values):
                cells = [
                    "" if np.isnan(value) else repr(float(value)) for value in reading
                ]
                writer.writerow(prefix + [repr(float(hour))] + cells)
                rows_written += 1
    return rows_written


def read_fleet_csv(path: Union[str, Path]) -> list[DriveRecord]:
    """Load a fleet previously written by :func:`write_fleet_csv`.

    Rows may arrive grouped by drive in any sample order; samples are
    re-sorted by hour per drive.  Raises ``ValueError`` on a malformed
    header or inconsistent per-drive metadata.
    """
    path = Path(path)
    expected_header = _FIXED_COLUMNS + channel_shorts()
    per_drive: dict[str, dict] = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != expected_header:
            raise ValueError(
                f"unexpected header in {path}: got {header!r}, "
                f"expected {expected_header!r}"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(expected_header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(expected_header)} cells, "
                    f"got {len(row)}"
                )
            serial, family, failed, failure_hour, hour = row[:5]
            entry = per_drive.setdefault(
                serial,
                {
                    "family": family,
                    "failed": failed == "1",
                    "failure_hour": float(failure_hour) if failure_hour else None,
                    "hours": [],
                    "values": [],
                },
            )
            if entry["family"] != family or entry["failed"] != (failed == "1"):
                raise ValueError(
                    f"{path}:{line_number}: inconsistent metadata for drive {serial}"
                )
            entry["hours"].append(float(hour))
            entry["values"].append(
                [float(cell) if cell else np.nan for cell in row[5:]]
            )

    drives = []
    for serial, entry in per_drive.items():
        hours = np.asarray(entry["hours"], dtype=float)
        values = np.asarray(entry["values"], dtype=float).reshape(-1, N_CHANNELS)
        order = np.argsort(hours)
        drives.append(
            DriveRecord(
                serial=serial,
                family=entry["family"],
                failed=entry["failed"],
                hours=hours[order],
                values=values[order],
                failure_hour=entry["failure_hour"],
            )
        )
    drives.sort(key=lambda drive: drive.serial)
    return drives
