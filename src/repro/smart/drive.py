"""Per-drive data structures.

A :class:`DriveRecord` holds one drive's hourly SMART history as a
``(T, N_CHANNELS)`` float array (NaN rows mark missed samples, matching
the paper's note that "some samples were missed because of sampling or
storing errors") together with the absolute hour of each sample and, for
failed drives, the absolute hour of the failure event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.smart.attributes import N_CHANNELS


@dataclass
class DriveRecord:
    """One drive's SMART history.

    Attributes:
        serial: Unique identifier within the fleet.
        family: Drive family label (the paper's "W" / "Q").
        failed: Whether the drive failed during the observation period.
        hours: Absolute hour index of each sample, strictly increasing.
            Good drives span the collection period; failed drives cover
            (up to) the 20 days before failure.
        values: ``(len(hours), N_CHANNELS)`` SMART readings; an all-NaN
            row is a missed sample.
        failure_hour: Absolute hour of failure (``None`` for good drives).
    """

    serial: str
    family: str
    failed: bool
    hours: np.ndarray
    values: np.ndarray
    failure_hour: Optional[float] = None

    def __post_init__(self) -> None:
        self.hours = np.asarray(self.hours, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.hours.ndim != 1:
            raise ValueError(f"hours must be 1-D, got shape {self.hours.shape}")
        if self.values.shape != (self.hours.shape[0], N_CHANNELS):
            raise ValueError(
                f"values must be ({self.hours.shape[0]}, {N_CHANNELS}), "
                f"got {self.values.shape}"
            )
        if self.hours.size > 1 and not np.all(np.diff(self.hours) > 0):
            raise ValueError("hours must be strictly increasing")
        if self.failed and self.failure_hour is None:
            raise ValueError(f"failed drive {self.serial} needs a failure_hour")
        if not self.failed and self.failure_hour is not None:
            raise ValueError(f"good drive {self.serial} must not have a failure_hour")

    @property
    def n_samples(self) -> int:
        """Number of recorded sampling slots (including missed ones)."""
        return int(self.hours.shape[0])

    def observed_mask(self) -> np.ndarray:
        """Boolean mask of samples that were actually recorded (not all-NaN)."""
        return ~np.all(np.isnan(self.values), axis=1)

    def hours_before_failure(self) -> np.ndarray:
        """Per-sample lead time to the failure event (failed drives only)."""
        if not self.failed:
            raise ValueError(f"drive {self.serial} is good; no failure to lead")
        return self.failure_hour - self.hours

    def window_before_failure(self, window_hours: float) -> np.ndarray:
        """Indices of samples within the last ``window_hours`` before failure.

        This is the paper's "failed time window": only the last-n-hours
        samples of a failed drive are used as failed training samples.
        """
        if window_hours <= 0:
            raise ValueError(f"window_hours must be > 0, got {window_hours}")
        lead = self.hours_before_failure()
        return np.nonzero((lead >= 0) & (lead <= window_hours) & self.observed_mask())[0]

    def slice_hours(self, start_hour: float, end_hour: float) -> "DriveRecord":
        """A copy restricted to samples with ``start_hour <= hour < end_hour``."""
        if end_hour <= start_hour:
            raise ValueError(
                f"end_hour must exceed start_hour, got [{start_hour}, {end_hour})"
            )
        mask = (self.hours >= start_hour) & (self.hours < end_hour)
        return DriveRecord(
            serial=self.serial,
            family=self.family,
            failed=self.failed,
            hours=self.hours[mask].copy(),
            values=self.values[mask].copy(),
            failure_hour=self.failure_hour,
        )
