"""``repro-fleet``: generate, describe and export synthetic fleets.

Subcommands:

* ``generate`` — build a synthetic fleet and write it to CSV (native
  long format or the Backblaze daily-snapshot schema);
* ``describe`` — print Table-I-style and per-attribute statistics for a
  fleet CSV (native or Backblaze format, auto-detected by header).

Examples::

    repro-fleet generate --w-good 500 --w-failed 40 --out fleet.csv
    repro-fleet generate --format backblaze --out daily.csv
    repro-fleet describe fleet.csv
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.smart.backblaze import read_backblaze_csv, write_backblaze_csv
from repro.smart.dataset import SmartDataset
from repro.smart.generator import default_fleet_config
from repro.smart.io import read_fleet_csv, write_fleet_csv
from repro.smart.stats import (
    attribute_summary,
    fleet_summary,
    normality_evidence,
    render_attribute_summary,
    render_fleet_summary,
)


def _add_generate(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a synthetic fleet and write it to CSV"
    )
    parser.add_argument("--w-good", type=int, default=500)
    parser.add_argument("--w-failed", type=int, default=40)
    parser.add_argument("--q-good", type=int, default=0)
    parser.add_argument("--q-failed", type=int, default=0)
    parser.add_argument("--days", type=int, default=7, help="collection days")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--format", choices=("native", "backblaze"), default="native"
    )
    parser.add_argument("--out", required=True, type=Path)


def _add_describe(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "describe", help="summarise a fleet CSV (native or Backblaze format)"
    )
    parser.add_argument("path", type=Path)
    parser.add_argument(
        "--normality", action="store_true",
        help="also run per-attribute normality tests",
    )


def _load_any(path: Path) -> SmartDataset:
    with path.open(newline="") as handle:
        header = next(csv.reader(handle), [])
    if "serial_number" in header:
        return SmartDataset(read_backblaze_csv(path))
    return SmartDataset(read_fleet_csv(path))


def _run_generate(args: argparse.Namespace) -> int:
    config = default_fleet_config(
        w_good=args.w_good,
        w_failed=args.w_failed,
        q_good=args.q_good,
        q_failed=args.q_failed,
        collection_days=args.days,
        seed=args.seed,
    )
    dataset = SmartDataset.generate(config)
    if args.format == "backblaze":
        rows = write_backblaze_csv(args.out, dataset.drives)
    else:
        rows = write_fleet_csv(args.out, dataset.drives)
    print(f"wrote {rows} rows for {len(dataset.drives)} drives to {args.out}")
    print(render_fleet_summary(fleet_summary(dataset)))
    return 0


def _run_describe(args: argparse.Namespace) -> int:
    if not args.path.exists():
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    dataset = _load_any(args.path)
    print(render_fleet_summary(fleet_summary(dataset)))
    print()
    print(render_attribute_summary(attribute_summary(dataset)))
    if args.normality:
        print()
        print("Normality (D'Agostino-Pearson) over the good population:")
        for row in normality_evidence(dataset):
            verdict = "non-normal" if row.non_normal else "compatible with normal"
            print(f"  {row.short:<9} p={row.p_value:.2e}  {verdict}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Generate, describe and export synthetic SMART fleets.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_describe(subparsers)
    args = parser.parse_args(argv)
    if args.command == "generate":
        return _run_generate(args)
    return _run_describe(args)


if __name__ == "__main__":
    sys.exit(main())
