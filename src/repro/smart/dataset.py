"""Fleet container and the paper's train/test protocols.

Section V-A1: "For each good drive, we take the earlier 70% of the
samples within the week as training data, and the later 30% as test
data.  Since failed drives are much less than good drives and the
chronological order of them was not recorded, we use all failed drives
and divide them randomly into training and test sets in a 7 to 3 ratio."

:class:`SmartDataset` implements that split, plus the drive subsampling
behind Table V and the by-hour restriction behind the model-aging
experiments (Figures 6-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.smart.drive import DriveRecord
from repro.smart.generator import FleetConfig, FleetGenerator
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class TrainTestSplit:
    """The paper's four-way split of a fleet.

    ``train_good`` holds *time-sliced copies* of each good drive (the
    earlier fraction of its samples) and ``test_good`` the complementary
    later slices; ``train_failed``/``test_failed`` partition the failed
    drives whole (drive-level random 7:3).
    """

    train_good: tuple[DriveRecord, ...]
    test_good: tuple[DriveRecord, ...]
    train_failed: tuple[DriveRecord, ...]
    test_failed: tuple[DriveRecord, ...]


@dataclass
class SmartDataset:
    """A fleet of drives plus the paper's selection protocols."""

    drives: list[DriveRecord]

    @classmethod
    def generate(cls, config: FleetConfig) -> "SmartDataset":
        """Generate a synthetic fleet from a :class:`FleetConfig`."""
        return cls(FleetGenerator(config).generate())

    # -- basic selections --------------------------------------------------------

    @property
    def good_drives(self) -> list[DriveRecord]:
        """Drives that survived the collection period."""
        return [drive for drive in self.drives if not drive.failed]

    @property
    def failed_drives(self) -> list[DriveRecord]:
        """Drives that failed during the collection period."""
        return [drive for drive in self.drives if drive.failed]

    def families(self) -> list[str]:
        """Family labels present, sorted."""
        return sorted({drive.family for drive in self.drives})

    def filter_family(self, family: str) -> "SmartDataset":
        """The sub-fleet of one family (the paper separates models per family)."""
        subset = [drive for drive in self.drives if drive.family == family]
        if not subset:
            raise ValueError(
                f"no drives of family {family!r}; present: {self.families()}"
            )
        return SmartDataset(subset)

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-family good/failed drive counts (the paper's Table I shape)."""
        out: dict[str, dict[str, int]] = {}
        for drive in self.drives:
            entry = out.setdefault(drive.family, {"good": 0, "failed": 0})
            entry["failed" if drive.failed else "good"] += 1
        return out

    # -- Table V: smaller fleets ---------------------------------------------------

    def subsample_drives(self, fraction: float, seed: RandomState = None) -> "SmartDataset":
        """Randomly keep ``fraction`` of good and of failed drives.

        This is the synthesis behind Table V: datasets A/B/C/D keep 10%,
        25%, 50% and 75% of the full fleet.  At least one drive of each
        class is always kept when the class is non-empty.
        """
        check_fraction("fraction", fraction)
        if fraction == 0:
            raise ValueError("fraction must be > 0")
        rng = as_rng(seed)
        selected: list[DriveRecord] = []
        for population in (self.good_drives, self.failed_drives):
            if not population:
                continue
            keep = max(1, int(round(fraction * len(population))))
            chosen = rng.choice(len(population), size=keep, replace=False)
            selected.extend(population[i] for i in sorted(chosen))
        return SmartDataset(selected)

    # -- model-aging slicing ----------------------------------------------------------

    def restrict_good_hours(self, start_hour: float, end_hour: float) -> "SmartDataset":
        """Good drives sliced to ``[start_hour, end_hour)``; failed drives intact.

        The updating experiments retrain on specific weeks of good
        samples while reusing the single global failed-drive pool ("we
        use the same failed sample set in all experiments").  Good drives
        left with no samples in the window are dropped.
        """
        sliced: list[DriveRecord] = []
        for drive in self.drives:
            if drive.failed:
                sliced.append(drive)
                continue
            cut = drive.slice_hours(start_hour, end_hour)
            if cut.n_samples > 0:
                sliced.append(cut)
        return SmartDataset(sliced)

    # -- the paper's split protocol -----------------------------------------------------

    def split(
        self,
        *,
        train_fraction: float = 0.7,
        seed: RandomState = None,
    ) -> TrainTestSplit:
        """Split per Section V-A1 (time split for good, random for failed)."""
        check_fraction("train_fraction", train_fraction, inclusive=False)
        rng = as_rng(seed)
        train_good: list[DriveRecord] = []
        test_good: list[DriveRecord] = []
        for drive in self.good_drives:
            if drive.n_samples == 0:
                continue
            boundary = int(round(train_fraction * drive.n_samples))
            boundary = min(max(boundary, 1), drive.n_samples - 1) if drive.n_samples > 1 else 1
            cut_hour = (
                drive.hours[boundary] if boundary < drive.n_samples else drive.hours[-1] + 1.0
            )
            early = drive.slice_hours(drive.hours[0], cut_hour)
            if early.n_samples:
                train_good.append(early)
            if boundary < drive.n_samples:
                late = drive.slice_hours(cut_hour, drive.hours[-1] + 1.0)
                if late.n_samples:
                    test_good.append(late)

        failed = list(self.failed_drives)
        order = rng.permutation(len(failed))
        n_train = int(round(train_fraction * len(failed)))
        train_failed = [failed[i] for i in sorted(order[:n_train])]
        test_failed = [failed[i] for i in sorted(order[n_train:])]
        return TrainTestSplit(
            train_good=tuple(train_good),
            test_good=tuple(test_good),
            train_failed=tuple(train_failed),
            test_failed=tuple(test_failed),
        )
