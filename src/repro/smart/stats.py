"""Fleet descriptive statistics (the paper's Table I and Section IV-B).

Three views of a fleet:

* :func:`fleet_summary` — the Table I layout: per (family, class) drive
  counts, observation period, and recorded sample counts;
* :func:`attribute_summary` — per-channel location/spread for the good
  population versus the failed population's last week, the raw material
  of feature selection;
* :func:`normality_evidence` — D'Agostino-Pearson normality tests per
  channel, quantifying the paper's observation (after Hughes et al.)
  that "the SMART attributes are non-parametrically distributed", which
  motivates the rank-based selection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.smart.attributes import channel_index, channel_shorts
from repro.smart.dataset import SmartDataset
from repro.utils.rng import RandomState, as_rng
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class FleetSummaryRow:
    """One Table I row."""

    family: str
    drive_class: str
    n_drives: int
    period_days: float
    n_samples: int


def fleet_summary(dataset: SmartDataset) -> list[FleetSummaryRow]:
    """Per-(family, class) drive/sample counts, like the paper's Table I."""
    rows = []
    for family in dataset.families():
        subset = dataset.filter_family(family)
        for drive_class, drives in (
            ("Good", subset.good_drives),
            ("Failed", subset.failed_drives),
        ):
            if not drives:
                continue
            spans = [
                float(d.hours[-1] - d.hours[0]) + 1.0 for d in drives if d.n_samples
            ]
            period_days = max(spans) / 24.0 if spans else 0.0
            n_samples = int(sum(d.observed_mask().sum() for d in drives))
            rows.append(
                FleetSummaryRow(
                    family=family,
                    drive_class=drive_class,
                    n_drives=len(drives),
                    period_days=period_days,
                    n_samples=n_samples,
                )
            )
    return rows


def render_fleet_summary(rows: Sequence[FleetSummaryRow]) -> str:
    """Table I layout."""
    table = AsciiTable(
        ["Family", "Class", "Disks", "Period (days)", "Samples"],
        title="Fleet summary (Table I layout)",
    )
    for row in rows:
        table.add_row(
            [row.family, row.drive_class, row.n_drives,
             row.period_days, row.n_samples]
        )
    return table.render()


@dataclass(frozen=True)
class AttributeSummaryRow:
    """Good vs failed-window statistics for one channel."""

    short: str
    good_mean: float
    good_std: float
    failed_mean: float
    failed_std: float

    @property
    def separation(self) -> float:
        """(good mean - failed mean) in good-std units; >0 = degrading."""
        if self.good_std == 0:
            return 0.0
        return (self.good_mean - self.failed_mean) / self.good_std


def _good_value_pool(
    dataset: SmartDataset,
    column: int,
    samples_per_drive: int,
    rng: np.random.Generator,
) -> np.ndarray:
    pool = []
    for drive in dataset.good_drives:
        series = drive.values[:, column]
        finite = np.nonzero(np.isfinite(series))[0]
        if finite.size == 0:
            continue
        take = min(samples_per_drive, finite.size)
        pool.append(series[rng.choice(finite, size=take, replace=False)])
    return np.concatenate(pool) if pool else np.empty(0)


def _failed_window_pool(
    dataset: SmartDataset, column: int, window_hours: float
) -> np.ndarray:
    pool = []
    for drive in dataset.failed_drives:
        window = drive.window_before_failure(window_hours)
        if window.size:
            values = drive.values[window, column]
            pool.append(values[np.isfinite(values)])
    return np.concatenate(pool) if pool else np.empty(0)


def attribute_summary(
    dataset: SmartDataset,
    *,
    shorts: Optional[Sequence[str]] = None,
    failed_window_hours: float = 168.0,
    samples_per_drive: int = 5,
    seed: RandomState = 0,
) -> list[AttributeSummaryRow]:
    """Good-vs-failed location/spread per channel, sorted by separation."""
    shorts = list(shorts) if shorts is not None else channel_shorts()
    rng = as_rng(seed)
    rows = []
    for short in shorts:
        column = channel_index(short)
        good = _good_value_pool(dataset, column, samples_per_drive, rng)
        failed = _failed_window_pool(dataset, column, failed_window_hours)
        rows.append(
            AttributeSummaryRow(
                short=short,
                good_mean=float(good.mean()) if good.size else float("nan"),
                good_std=float(good.std()) if good.size else float("nan"),
                failed_mean=float(failed.mean()) if failed.size else float("nan"),
                failed_std=float(failed.std()) if failed.size else float("nan"),
            )
        )
    rows.sort(key=lambda row: abs(row.separation), reverse=True)
    return rows


def render_attribute_summary(rows: Sequence[AttributeSummaryRow]) -> str:
    """Separation-ordered attribute table."""
    table = AsciiTable(
        ["Attribute", "Good mean", "Good std", "Failed mean", "Failed std",
         "Separation (z)"],
        title="Attribute statistics: good population vs failed drives' last week",
    )
    for row in rows:
        table.add_row(
            [row.short, row.good_mean, row.good_std, row.failed_mean,
             row.failed_std, row.separation]
        )
    return table.render()


@dataclass(frozen=True)
class NormalityRow:
    """D'Agostino-Pearson test outcome for one channel."""

    short: str
    statistic: float
    p_value: float

    @property
    def non_normal(self) -> bool:
        """True at the conventional 1% level."""
        return self.p_value < 0.01


def normality_evidence(
    dataset: SmartDataset,
    *,
    shorts: Optional[Sequence[str]] = None,
    samples_per_drive: int = 5,
    max_samples: int = 5_000,
    seed: RandomState = 0,
) -> list[NormalityRow]:
    """Normality tests over the good population per channel.

    Constant channels (zero variance) are reported with ``p = 0.0`` —
    degenerate distributions are certainly not Gaussian.
    """
    shorts = list(shorts) if shorts is not None else channel_shorts()
    rng = as_rng(seed)
    rows = []
    for short in shorts:
        column = channel_index(short)
        pool = _good_value_pool(dataset, column, samples_per_drive, rng)
        if pool.size > max_samples:
            pool = pool[rng.choice(pool.size, size=max_samples, replace=False)]
        if pool.size < 20 or np.isclose(pool.std(), 0.0):
            rows.append(NormalityRow(short=short, statistic=float("inf"), p_value=0.0))
            continue
        statistic, p_value = scipy_stats.normaltest(pool)
        rows.append(
            NormalityRow(short=short, statistic=float(statistic), p_value=float(p_value))
        )
    return rows
