"""SMART attribute catalogue (the paper's Table II).

The paper reads 23 attributes per SMART record, filters the changeless
ones, and keeps 12 *basic features*: ten one-byte normalized values
(range 1-253, where lower means less healthy by SMART convention) plus
the raw values of "Reallocated Sectors Count" and "Current Pending
Sector Count" (vendor-specific counters, where higher means worse).

This module fixes the channel ordering used everywhere else in the
library: a fleet's time series is a ``(T, N_CHANNELS)`` array whose
columns follow :data:`CHANNELS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Kind(Enum):
    """Whether a channel stores a normalized value or a raw counter."""

    NORMALIZED = "normalized"
    RAW = "raw"


@dataclass(frozen=True)
class AttributeSpec:
    """One SMART channel.

    Attributes:
        index: Column in the fleet time-series array.
        smart_id: Numbering from the paper's Table II (1-12).
        name: Full attribute name.
        short: The abbreviation used in the paper's Figure 1 and text.
        kind: Normalized value or raw counter.
    """

    index: int
    smart_id: int
    name: str
    short: str
    kind: Kind


#: The paper's Table II in canonical column order.
CHANNELS: tuple[AttributeSpec, ...] = (
    AttributeSpec(0, 1, "Raw Read Error Rate", "RRER", Kind.NORMALIZED),
    AttributeSpec(1, 2, "Spin Up Time", "SUT", Kind.NORMALIZED),
    AttributeSpec(2, 3, "Reallocated Sectors Count", "RSC", Kind.NORMALIZED),
    AttributeSpec(3, 4, "Seek Error Rate", "SER", Kind.NORMALIZED),
    AttributeSpec(4, 5, "Power On Hours", "POH", Kind.NORMALIZED),
    AttributeSpec(5, 6, "Reported Uncorrectable Errors", "RUE", Kind.NORMALIZED),
    AttributeSpec(6, 7, "High Fly Writes", "HFW", Kind.NORMALIZED),
    AttributeSpec(7, 8, "Temperature Celsius", "TC", Kind.NORMALIZED),
    AttributeSpec(8, 9, "Hardware ECC Recovered", "HER", Kind.NORMALIZED),
    AttributeSpec(9, 10, "Current Pending Sector Count", "CPSC", Kind.NORMALIZED),
    AttributeSpec(10, 11, "Reallocated Sectors Count (raw value)", "RSC_RAW", Kind.RAW),
    AttributeSpec(11, 12, "Current Pending Sector Count (raw value)", "CPSC_RAW", Kind.RAW),
)

#: Number of channels stored per sample.
N_CHANNELS = len(CHANNELS)

#: Lookup by the paper's abbreviations ("POH", "RUE", ...).
BY_SHORT = {spec.short: spec for spec in CHANNELS}

#: Normalized SMART values live in this closed range.
NORMALIZED_MIN = 1.0
NORMALIZED_MAX = 253.0


def channel_index(short: str) -> int:
    """Column index for an attribute abbreviation.

    >>> channel_index("POH")
    4
    """
    try:
        return BY_SHORT[short].index
    except KeyError:
        raise ValueError(
            f"unknown SMART attribute {short!r}; known: {sorted(BY_SHORT)}"
        ) from None


def channel_shorts() -> list[str]:
    """All channel abbreviations in column order."""
    return [spec.short for spec in CHANNELS]
