"""SMART data substrate: attributes, drives, synthetic fleets, IO."""

from repro.smart.attributes import (
    BY_SHORT,
    CHANNELS,
    N_CHANNELS,
    AttributeSpec,
    Kind,
    channel_index,
    channel_shorts,
)
from repro.smart.dataset import SmartDataset, TrainTestSplit
from repro.smart.drive import DriveRecord
from repro.smart.generator import (
    DegradationSignature,
    FamilySpec,
    FleetConfig,
    FleetGenerator,
    default_fleet_config,
    family_q,
    family_w,
)
from repro.smart.backblaze import (
    BackblazeReader,
    DriveLoadResult,
    read_backblaze_csv,
    render_backblaze_mapping_table,
    write_backblaze_csv,
)
from repro.smart.io import read_fleet_csv, write_fleet_csv
from repro.smart.ingest import (
    INGEST_MANIFEST_SCHEMA,
    IngestConfig,
    ingest_backblaze,
    load_backblaze,
    load_store,
    read_manifest,
)
from repro.smart.registry import (
    DatasetSpec,
    canonical_handle,
    describe,
    parse_handle,
    register_loader,
    registered_kinds,
    resolve,
)

__all__ = [
    "BY_SHORT",
    "CHANNELS",
    "INGEST_MANIFEST_SCHEMA",
    "N_CHANNELS",
    "AttributeSpec",
    "BackblazeReader",
    "DatasetSpec",
    "DegradationSignature",
    "DriveLoadResult",
    "DriveRecord",
    "FamilySpec",
    "FleetConfig",
    "FleetGenerator",
    "IngestConfig",
    "Kind",
    "SmartDataset",
    "TrainTestSplit",
    "canonical_handle",
    "channel_index",
    "channel_shorts",
    "default_fleet_config",
    "describe",
    "family_q",
    "family_w",
    "ingest_backblaze",
    "load_backblaze",
    "load_store",
    "parse_handle",
    "read_backblaze_csv",
    "read_fleet_csv",
    "read_manifest",
    "register_loader",
    "registered_kinds",
    "render_backblaze_mapping_table",
    "resolve",
    "write_backblaze_csv",
    "write_fleet_csv",
]
