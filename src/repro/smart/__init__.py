"""SMART data substrate: attributes, drives, synthetic fleets, IO."""

from repro.smart.attributes import (
    BY_SHORT,
    CHANNELS,
    N_CHANNELS,
    AttributeSpec,
    Kind,
    channel_index,
    channel_shorts,
)
from repro.smart.dataset import SmartDataset, TrainTestSplit
from repro.smart.drive import DriveRecord
from repro.smart.generator import (
    DegradationSignature,
    FamilySpec,
    FleetConfig,
    FleetGenerator,
    default_fleet_config,
    family_q,
    family_w,
)
from repro.smart.backblaze import (
    DriveLoadResult,
    read_backblaze_csv,
    write_backblaze_csv,
)
from repro.smart.io import read_fleet_csv, write_fleet_csv

__all__ = [
    "BY_SHORT",
    "CHANNELS",
    "N_CHANNELS",
    "AttributeSpec",
    "DegradationSignature",
    "DriveLoadResult",
    "DriveRecord",
    "FamilySpec",
    "FleetConfig",
    "FleetGenerator",
    "Kind",
    "SmartDataset",
    "TrainTestSplit",
    "channel_index",
    "channel_shorts",
    "default_fleet_config",
    "family_q",
    "family_w",
    "read_backblaze_csv",
    "read_fleet_csv",
    "write_backblaze_csv",
    "write_fleet_csv",
]
