"""Chunked, parallel, out-of-core ingest of Backblaze quarterly dumps.

A Backblaze quarterly dump is ~90 daily CSVs totalling millions of
drive-days — far beyond what :func:`~repro.smart.backblaze.read_backblaze_csv`
should hold as text.  This module turns such a dump (a directory of
daily CSVs, a zip archive of one, or a single file) into an on-disk
**columnar store** the rest of the library loads in one ``np.load``
pass, without ever materializing the raw text:

1. **Chunk.**  The day files are partitioned into chunks of
   ``chunk_files`` files each.  Chunks are the unit of parallelism,
   checkpointing and memory: a parse worker holds one chunk's numeric
   aggregate, never the whole dump (the manifest records per-chunk row
   counts, so the bound is testable).
2. **Parse.**  Each chunk streams through
   :class:`~repro.smart.backblaze.BackblazeReader` row by row inside a
   :func:`~repro.utils.parallel.run_tasks` worker — per-model filtering
   applied at the row, malformed rows skipped into the lenient ledger —
   and lands as a columnar **part file** (``parts/part-*.npz``) plus a
   JSON summary persisted to a :class:`~repro.utils.checkpoint.JsonCheckpoint`,
   so a killed ingest resumes at chunk granularity.
3. **Assemble.**  Parts merge in chunk order (a drive's rows re-join
   across day files and chunk boundaries keyed by serial; later files
   win duplicate days), failure-window labeling is applied per drive,
   and the store is written as one ``.npy`` file per column — byte
   deterministic, so serial and parallel ingests of the same dump are
   bit-identical, and so is a resumed one.

The store carries a schema-tagged ``manifest.json``
(:data:`INGEST_MANIFEST_SCHEMA`) recording the source files, the config
fingerprint, per-chunk statistics and the full skip ledger; re-running
the same ingest over a complete store is an idempotent no-op, and
running a *different* config into the same directory is a hard error
instead of a silent mix.

``docs/datasets.md`` walks through the pipeline end to end; the
``repro-smart ingest`` CLI wraps :func:`ingest_backblaze`.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.observability import ROW_BUCKETS, get_registry, get_tracer
from repro.smart.backblaze import (
    BackblazeReader,
    DriveTable,
    build_drive_record,
    model_matches,
)
from repro.smart.dataset import SmartDataset
from repro.smart.drive import DriveRecord
from repro.utils.checkpoint import JsonCheckpoint
from repro.utils.errors import IngestError, IngestInterrupted
from repro.utils.parallel import run_tasks

#: Schema tag of the store manifest; bump on incompatible layout changes.
INGEST_MANIFEST_SCHEMA = "repro.ingest-manifest/v1"

#: The ``kind`` tag of the per-chunk resume checkpoint.
INGEST_CHECKPOINT_KIND = "backblaze-ingest"

#: Column files of the store, written one ``np.save`` each (``np.savez``
#: would embed zip timestamps and break byte determinism).
STORE_ARRAYS = (
    "serials", "families", "failed", "failure_hour", "offsets",
    "hours", "values",
)

#: A file reference inside a source: ``(kind, path, member)`` where kind
#: is ``"fs"`` (member empty) or ``"zip"`` (member names the archive
#: entry).  Plain tuples so they are picklable and JSON-able verbatim.
FileRef = tuple


@dataclass(frozen=True)
class IngestConfig:
    """Everything that determines an ingest's output bytes (plus knobs).

    The first group is the *fingerprint*: change any of these and the
    store's bytes change, so they are recorded in the manifest and
    guarded on resume.  ``n_jobs`` and ``stop_after_chunks`` are
    execution knobs — a serial, a parallel and an interrupted-and-resumed
    ingest of the same fingerprint produce bit-identical stores.

    Attributes:
        source: The dump — a directory of daily CSVs, a ``.zip`` of one,
            or a single CSV file.
        out: The store directory to create (holds ``manifest.json``,
            the column ``.npy`` files, and — transiently — ``parts/``
            and the resume checkpoint).
        models: Per-model filter; keep drives whose ``model`` starts
            with any of these prefixes (empty keeps all).
        family_from_model: Use the ``model`` column as drive family.
        failure_window_days: Trim failed drives to the last N days
            before failure (the paper's 20-day bound); ``None`` keeps
            full histories.
        failure_label: Where a failed drive's failure hour lands — see
            :data:`~repro.smart.backblaze.FAILURE_LABELS`.
        lenient: Skip malformed rows into the ledger (default) instead
            of failing the chunk.
        chunk_files: Day files per chunk — the parallelism/checkpoint/
            memory granule.
        n_jobs: Parse workers (:func:`~repro.utils.parallel.resolve_n_jobs`
            semantics; ``None`` defers to ``REPRO_N_JOBS``).
        stop_after_chunks: Test hook — parse this many fresh chunks
            serially, then raise
            :class:`~repro.utils.errors.IngestInterrupted` (checkpoint
            already persisted) to exercise resume paths.
    """

    source: str
    out: str
    models: tuple[str, ...] = ()
    family_from_model: bool = True
    failure_window_days: Optional[int] = None
    failure_label: str = "day-end"
    lenient: bool = True
    chunk_files: int = 8
    n_jobs: Optional[int] = None
    stop_after_chunks: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "source", str(self.source))
        object.__setattr__(self, "out", str(self.out))
        object.__setattr__(self, "models", tuple(self.models))
        if self.chunk_files < 1:
            raise ValueError(f"chunk_files must be >= 1, got {self.chunk_files}")

    def fingerprint(self) -> dict:
        """The JSON document the manifest and checkpoint guard against."""
        return {
            "source": os.path.basename(self.source.rstrip("/")) or self.source,
            "models": list(self.models),
            "family_from_model": self.family_from_model,
            "failure_window_days": self.failure_window_days,
            "failure_label": self.failure_label,
            "lenient": self.lenient,
            "chunk_files": self.chunk_files,
        }


def discover_source_files(source: Union[str, Path]) -> list[FileRef]:
    """Enumerate the day files of a dump, sorted by name.

    Accepts a directory (its ``*.csv``, non-recursive), a ``.zip``
    archive (its ``*.csv`` members, directory entries skipped), or a
    single CSV file.  Sorting by name orders Backblaze's
    ``YYYY-MM-DD.csv`` files chronologically, which is what makes
    "later file wins" equal "later day wins" for duplicate rows.
    """
    source = Path(source)
    if source.is_dir():
        refs = [("fs", str(path), "") for path in sorted(source.glob("*.csv"))]
    elif source.suffix == ".zip":
        if not source.exists():
            raise IngestError("source not found", source=str(source))
        with zipfile.ZipFile(source) as archive:
            refs = [
                ("zip", str(source), name)
                for name in sorted(archive.namelist())
                if name.endswith(".csv") and not name.endswith("/")
            ]
    elif source.exists():
        refs = [("fs", str(source), "")]
    else:
        raise IngestError("source not found", source=str(source))
    if not refs:
        raise IngestError("no CSV files in source", source=str(source))
    return refs


def _ref_label(ref: FileRef) -> str:
    kind, path, member = ref
    return f"{path}!{member}" if kind == "zip" else path


@contextmanager
def _open_ref(ref: FileRef) -> Iterator:
    """Open a file reference as a text handle (streams, never slurps)."""
    kind, path, member = ref
    if kind == "zip":
        with zipfile.ZipFile(path) as archive:
            with archive.open(member) as binary:
                yield io.TextIOWrapper(binary, encoding="utf-8", newline="")
    else:
        with open(path, newline="") as handle:
            yield handle


def _chunk_refs(refs: Sequence[FileRef], chunk_files: int) -> list[list[FileRef]]:
    return [
        list(refs[start:start + chunk_files])
        for start in range(0, len(refs), chunk_files)
    ]


def _part_path(out: Path, chunk: int) -> Path:
    return out / "parts" / f"part-{chunk:05d}.npz"


def _parse_chunk(config: IngestConfig, task: tuple) -> dict:
    """Parse one chunk of day files into a part file (run_tasks worker).

    ``task`` is ``(chunk_index, [file_ref, ...])``.  Streams every file
    through :class:`BackblazeReader`, keeps rows passing the model
    filter, and writes the chunk's columnar aggregate to
    ``parts/part-<index>.npz``.  Returns the JSON-able chunk summary the
    checkpoint and manifest record — including the chunk's slice of the
    lenient ledger, so row-level provenance survives into the manifest.
    """
    chunk_index, refs = task
    registry = get_registry()
    tracer = get_tracer()
    table = DriveTable()
    n_filtered = 0
    errors: list[dict] = []
    missing_columns: dict[str, list[str]] = {}
    with tracer.span(
        "ingest.chunk", category="ingest", chunk=chunk_index, n_files=len(refs)
    ):
        for ref in refs:
            label = _ref_label(ref)
            with _open_ref(ref) as handle:
                reader = BackblazeReader(
                    handle, source=label, lenient=config.lenient
                )
                if reader.missing_columns:
                    missing_columns[label] = list(reader.missing_columns)
                for row in reader:
                    if model_matches(row.model, config.models):
                        table.add(row)
                    else:
                        n_filtered += 1
                errors.extend(
                    {
                        "source": error.source,
                        "line": error.line,
                        "column": error.column,
                        "message": str(error),
                    }
                    for error in reader.errors
                )
        n_rows = table.n_rows
        part = _part_path(Path(config.out), chunk_index)
        part.parent.mkdir(parents=True, exist_ok=True)
        np.savez(part, **table.columnar())
    registry.histogram(
        "ingest.chunk_rows", ROW_BUCKETS, unit="rows",
        help="rows kept per parsed chunk (the out-of-core memory granule)",
    ).observe(float(n_rows))
    return {
        "chunk": chunk_index,
        "files": [list(ref) for ref in refs],
        "n_rows": n_rows,
        "n_filtered_rows": n_filtered,
        "n_skipped_rows": len(errors),
        "n_serials": len(table),
        "errors": errors,
        "missing_columns": missing_columns,
    }


def _assemble(config: IngestConfig, summaries: list[dict]) -> dict:
    """Merge part files into the columnar store; returns the manifest.

    Parts merge in chunk order, so a row for the same ``(serial, day)``
    in a later file overwrites an earlier one — identical semantics to
    feeding every file through one :class:`DriveTable` serially, which
    is what makes the chunked and in-memory paths agree bit for bit.
    """
    out = Path(config.out)
    registry = get_registry()
    tracer = get_tracer()
    with tracer.span(
        "ingest.assemble", category="ingest", n_chunks=len(summaries)
    ):
        merged: dict[str, dict] = {}
        for summary in summaries:
            with np.load(_part_path(out, summary["chunk"])) as part:
                serials = part["serials"]
                models = part["models"]
                failed_day = part["failed_day"]
                row_serial = part["row_serial"]
                row_day = part["row_day"]
                row_values = part["row_values"]
                entries = []
                for i, serial in enumerate(serials):
                    entry = merged.setdefault(
                        str(serial), {"model": "", "days": {}, "failed_day": None}
                    )
                    entry["model"] = str(models[i])
                    day = int(failed_day[i])
                    if day >= 0:
                        previous = entry["failed_day"]
                        entry["failed_day"] = (
                            day if previous is None else max(previous, day)
                        )
                    entries.append(entry)
                for j in range(row_day.shape[0]):
                    entries[int(row_serial[j])]["days"][int(row_day[j])] = (
                        row_values[j]
                    )

        epoch = None
        if merged:
            epoch = min(min(entry["days"]) for entry in merged.values())
        drives = []
        for serial in sorted(merged):
            entry = merged[serial]
            days = np.array(sorted(entry["days"]), dtype=np.int64)
            values = np.vstack([entry["days"][day] for day in days])
            drives.append(
                build_drive_record(
                    serial,
                    entry["model"] if config.family_from_model else "BB",
                    days,
                    values,
                    failed=entry["failed_day"] is not None,
                    epoch_ordinal=epoch,
                    failure_window_days=config.failure_window_days,
                    failure_label=config.failure_label,
                )
            )

        offsets = np.zeros(len(drives) + 1, dtype=np.int64)
        for i, drive in enumerate(drives):
            offsets[i + 1] = offsets[i] + drive.n_samples
        arrays = {
            "serials": np.array([d.serial for d in drives], dtype=np.str_),
            "families": np.array([d.family for d in drives], dtype=np.str_),
            "failed": np.array([d.failed for d in drives], dtype=bool),
            "failure_hour": np.array(
                [np.nan if d.failure_hour is None else d.failure_hour
                 for d in drives],
                dtype=np.float64,
            ),
            "offsets": offsets,
            "hours": (
                np.concatenate([d.hours for d in drives]) if drives
                else np.empty(0)
            ),
            "values": (
                np.concatenate([d.values for d in drives]) if drives
                else np.empty((0, 0))
            ),
        }
        for name in STORE_ARRAYS:
            np.save(out / f"{name}.npy", arrays[name])
        registry.counter(
            "ingest.drives", help="drives assembled into the store"
        ).inc(len(drives))

    missing_columns: dict[str, list[str]] = {}
    for summary in summaries:
        missing_columns.update(summary["missing_columns"])
    return {
        "schema": INGEST_MANIFEST_SCHEMA,
        "config": config.fingerprint(),
        "n_chunks": len(summaries),
        "chunks": [
            {key: value for key, value in summary.items() if key != "errors"}
            for summary in summaries
        ],
        "errors": [error for s in summaries for error in s["errors"]],
        "missing_columns": missing_columns,
        "totals": {
            "n_files": sum(len(s["files"]) for s in summaries),
            "n_rows": sum(s["n_rows"] for s in summaries),
            "n_filtered_rows": sum(s["n_filtered_rows"] for s in summaries),
            "n_skipped_rows": sum(s["n_skipped_rows"] for s in summaries),
            "n_drives": len(drives),
            "n_failed": int(sum(d.failed for d in drives)),
            "n_samples": int(offsets[-1]),
            "epoch_day": (
                date.fromordinal(epoch).isoformat() if epoch is not None
                else None
            ),
        },
    }


def _write_manifest(out: Path, manifest: dict) -> None:
    """Atomic manifest write: the store is complete iff the file exists."""
    handle = tempfile.NamedTemporaryFile(
        "w", dir=out, prefix="manifest.", suffix=".tmp", delete=False
    )
    try:
        with handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, out / "manifest.json")
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def read_manifest(store: Union[str, Path]) -> dict:
    """The store's manifest, schema-checked."""
    path = Path(store) / "manifest.json"
    with path.open() as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != INGEST_MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {INGEST_MANIFEST_SCHEMA!r}, "
            f"got {manifest.get('schema')!r}"
        )
    return manifest


def ingest_backblaze(config: IngestConfig) -> dict:
    """Run (or resume, or no-op) one chunked ingest; returns the manifest.

    Idempotence and resume:

    * ``out/manifest.json`` present with the same fingerprint — the
      ingest already completed; returns the manifest without touching a
      file (a test can assert zero parse calls).
    * ``out`` holds a *different* fingerprint (manifest or mid-ingest
      checkpoint) — raises ``ValueError`` instead of mixing datasets.
    * A mid-ingest checkpoint — chunks already parsed (part file on
      disk) are reloaded, only the missing ones are parsed; the final
      store is bit-identical to an uninterrupted run.

    Parallelism: chunks fan out through
    :func:`~repro.utils.parallel.run_tasks` (``config.n_jobs``); all
    merge decisions are keyed by chunk order, never completion order,
    so serial and parallel ingests agree bit for bit.
    """
    out = Path(config.out)
    registry = get_registry()
    tracer = get_tracer()
    manifest_path = out / "manifest.json"
    if manifest_path.exists():
        manifest = read_manifest(out)
        if manifest["config"] != config.fingerprint():
            raise ValueError(
                f"{out} already holds a completed ingest with a different "
                f"config ({manifest['config']}); use a fresh out directory "
                "or delete the store to re-ingest"
            )
        return manifest

    refs = discover_source_files(config.source)
    chunks = _chunk_refs(refs, config.chunk_files)
    out.mkdir(parents=True, exist_ok=True)
    checkpoint = JsonCheckpoint(
        out / "ingest-checkpoint.json", kind=INGEST_CHECKPOINT_KIND
    )
    guard = checkpoint.get("__config__")
    if guard is None:
        checkpoint.set("__config__", config.fingerprint())
    elif guard != config.fingerprint():
        raise ValueError(
            f"{checkpoint.path} belongs to an ingest with a different "
            f"config ({guard}); use a fresh out directory or delete it"
        )

    with tracer.span(
        "ingest.run", category="ingest",
        n_files=len(refs), n_chunks=len(chunks),
    ):
        summaries: list[Optional[dict]] = [None] * len(chunks)
        pending: list[tuple] = []
        n_cached = 0
        for index, chunk in enumerate(chunks):
            cached = checkpoint.get(f"chunk-{index}")
            if cached is not None and _part_path(out, index).exists():
                summaries[index] = cached
                n_cached += 1
            else:
                pending.append((index, chunk))
        registry.counter(
            "ingest.checkpoint_hits",
            help="chunks reloaded from a mid-ingest checkpoint",
        ).inc(n_cached)

        def record(_: int, summary: dict) -> None:
            summaries[summary["chunk"]] = summary
            checkpoint.set(f"chunk-{summary['chunk']}", summary)

        if config.stop_after_chunks is not None:
            # Test hook: deterministic interruption point, serial on
            # purpose so exactly the first k pending chunks are parsed.
            for done, task in enumerate(pending):
                if done >= config.stop_after_chunks:
                    raise IngestInterrupted(
                        f"stopped after {done} fresh chunk(s) of "
                        f"{len(pending)} pending ({n_cached} cached)",
                        chunks_done=done,
                    )
                record(0, _parse_chunk(config, task))
        else:
            run_tasks(
                _parse_chunk, pending,
                n_jobs=config.n_jobs, context=config, on_result=record,
            )
        registry.counter(
            "ingest.chunks", help="chunks parsed fresh this run"
        ).inc(len(pending))
        registry.counter(
            "ingest.files", help="day files parsed fresh this run"
        ).inc(sum(len(chunk) for _, chunk in pending))
        registry.counter(
            "ingest.rows", help="rows kept across all chunks of the ingest"
        ).inc(sum(s["n_rows"] for s in summaries))
        registry.counter(
            "ingest.filtered_rows",
            help="rows dropped by the per-model filter",
        ).inc(sum(s["n_filtered_rows"] for s in summaries))
        registry.counter(
            "ingest.skipped_rows",
            help="malformed rows skipped into the lenient ledger",
        ).inc(sum(s["n_skipped_rows"] for s in summaries))

        manifest = _assemble(config, summaries)
        _write_manifest(out, manifest)
        shutil.rmtree(out / "parts", ignore_errors=True)
        try:
            os.unlink(checkpoint.path)
        except OSError:
            pass
    return manifest


def load_store(store: Union[str, Path]) -> SmartDataset:
    """Load an ingested columnar store back into a :class:`SmartDataset`.

    The inverse of :func:`ingest_backblaze`'s assembly step: one
    ``np.load`` per column file, then per-drive views sliced by the
    offsets table.  Raises ``ValueError`` when the manifest is missing
    (an interrupted ingest leaves no manifest — finish it first) or
    carries the wrong schema.
    """
    store = Path(store)
    if not (store / "manifest.json").exists():
        raise ValueError(
            f"{store} has no manifest.json — not a completed ingest store "
            "(resume the ingest to completion first)"
        )
    read_manifest(store)  # schema check
    arrays = {name: np.load(store / f"{name}.npy") for name in STORE_ARRAYS}
    drives = []
    offsets = arrays["offsets"]
    for i in range(len(arrays["serials"])):
        start, stop = int(offsets[i]), int(offsets[i + 1])
        failed = bool(arrays["failed"][i])
        drives.append(
            DriveRecord(
                serial=str(arrays["serials"][i]),
                family=str(arrays["families"][i]),
                failed=failed,
                hours=arrays["hours"][start:stop],
                values=arrays["values"][start:stop],
                failure_hour=(
                    float(arrays["failure_hour"][i]) if failed else None
                ),
            )
        )
    return SmartDataset(drives)


def load_backblaze(
    source: Union[str, Path],
    *,
    models: Sequence[str] = (),
    family_from_model: bool = True,
    failure_window_days: Optional[int] = None,
    failure_label: str = "day-end",
    lenient: bool = True,
) -> SmartDataset:
    """One-shot in-memory load of a dump (no store directory).

    Same streaming row path, model filter and labeling semantics as the
    chunked ingest — :func:`load_store` after :func:`ingest_backblaze`
    returns a bit-identical dataset — but aggregates in memory, for
    sources small enough not to need resumability.  Accepts everything
    :func:`discover_source_files` accepts.
    """
    table = DriveTable()
    for ref in discover_source_files(source):
        with _open_ref(ref) as handle:
            reader = BackblazeReader(
                handle, source=_ref_label(ref), lenient=lenient
            )
            for row in reader:
                if model_matches(row.model, models):
                    table.add(row)
    return SmartDataset(
        table.build(
            family_from_model=family_from_model,
            failure_window_days=failure_window_days,
            failure_label=failure_label,
        )
    )


# Re-exported for CLI convenience.
__all__ = [
    "INGEST_MANIFEST_SCHEMA",
    "INGEST_CHECKPOINT_KIND",
    "IngestConfig",
    "discover_source_files",
    "ingest_backblaze",
    "load_backblaze",
    "load_store",
    "read_manifest",
]
