"""Command-line runner: reproduce every table and figure.

``repro-experiments`` (or ``python -m repro.experiments.runner``) runs
the requested experiments at the requested scale and prints paper-style
tables.  ``--list`` shows the catalogue; ``--experiments table3 fig2``
selects a subset; ``--tiny`` uses the test-sized fleets.

Observability (see ``docs/observability.md``): ``--metrics-out PATH``
runs the selection under a recording metrics registry and writes the
snapshot (JSON, or Prometheus text for ``.prom``/``.txt`` paths) —
an existing snapshot at that path is merged into, or the new snapshot
is written to a versioned sibling, never silently overwritten;
``--trace-out PATH`` records spans and writes a Chrome-trace JSON
loadable in ``chrome://tracing``; ``--events-out PATH`` streams the
structured event log (``repro.events/v1`` JSONL, browsable with
``repro-events``) and stamps a ``run_completed`` event with the grid
checkpoint id.  Without these flags the no-op instruments stay
installed and instrumentation costs nothing.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro import observability as obs
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    GridContext,
    _run_one_experiment,
    emit_run_completed,
    run_experiment_grid,
)
from repro.smart.registry import canonical_handle, parse_handle, registered_kinds
from repro.utils.parallel import resolve_n_jobs
from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig12 import render_fig12, run_fig12
from repro.experiments.fig34 import render_fig34, run_fig34
from repro.experiments.fig6to9 import render_fig6to9, run_fig6to9
from repro.experiments.related_work import render_related_work, run_related_work
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import render_table4, run_table4
from repro.experiments.table5 import render_table5, run_table5
from repro.experiments.table6 import render_table6, run_table6

#: Experiment id -> (run, render); ordered as they appear in the paper.
CATALOGUE: dict[str, tuple[Callable, Callable]] = {
    "fig1": (run_fig1, render_fig1),
    "table3": (run_table3, render_table3),
    "table4": (run_table4, render_table4),
    "fig2": (run_fig2, render_fig2),
    "fig34": (run_fig34, render_fig34),
    "fig5": (run_fig5, render_fig5),
    "table5": (run_table5, render_table5),
    "fig6to9": (run_fig6to9, render_fig6to9),
    "fig10": (run_fig10, render_fig10),
    "table6": (run_table6, render_table6),
    "fig12": (run_fig12, render_fig12),
}

#: Extra experiments beyond the paper's evaluation artefacts.  Run only
#: when named explicitly (`--experiments related_work ablations`).
EXTRAS: dict[str, tuple[Callable, Callable]] = {
    "related_work": (run_related_work, render_related_work),
    "ablations": (None, None),  # resolved lazily below (many sub-sweeps)
}


def _run_ablations(scale: ExperimentScale):
    from repro.experiments import ablations as ab

    return [
        ("false-alarm loss weight", ab.render_ablation_rows(
            "Ablation: false-alarm loss weight", ab.sweep_loss_weight(scale))),
        ("failed share", ab.render_ablation_rows(
            "Ablation: failed-class share", ab.sweep_failed_share(scale))),
        ("pruning strength", ab.render_ablation_rows(
            "Ablation: pruning strength (CP)", ab.sweep_cp(scale))),
        ("deterioration windows", ab.render_ablation_rows(
            "Ablation: deterioration windows", ab.compare_window_modes(scale))),
        ("health regressors", ab.render_ablation_rows(
            "Ablation: single vs bagged health regressor",
            ab.compare_health_regressors(scale))),
        ("surrogate splits", ab.render_ablation_rows(
            "Ablation: surrogate splits under sensor outage",
            ab.compare_missing_data_robustness(scale))),
        ("model zoo", ab.render_ablation_rows(
            "Ablation: CT vs ensembles", ab.compare_model_zoo(scale))),
        ("adaptive updating", ab.render_adaptive_comparison(
            ab.compare_adaptive_updating(scale))),
    ]


def _render_ablations(sections) -> str:
    return "\n\n".join(text for _, text in sections)


EXTRAS["ablations"] = (_run_ablations, _render_ablations)


def run_experiment(name: str, scale: ExperimentScale = DEFAULT_SCALE) -> str:
    """Run one experiment by id and return its rendered output."""
    try:
        run, render = {**CATALOGUE, **EXTRAS}[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join([*CATALOGUE, *EXTRAS])}"
        ) from None
    return render(run(scale))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of Li et al., DSN 2014."
    )
    parser.add_argument(
        "--experiments", nargs="*", default=list(CATALOGUE),
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="use the small test-sized fleets (fast, noisier numbers)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also export the raw results of this run as a JSON document",
    )
    parser.add_argument(
        "--dataset", type=str, default=None, metavar="HANDLE",
        help="registry handle naming the dataset to run on instead of the "
        "synthetic fleets — 'kind:path?param=value', e.g. "
        "'backblaze:/data/q1-store' or 'synthetic:default?seed=11' "
        "(see docs/datasets.md; describe handles with repro-smart datasets)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for running experiments "
        "(default: REPRO_N_JOBS or serial; 0 = all cores)",
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="persist each finished experiment to this JSON checkpoint "
        "and resume from it on rerun (finished cells are not recomputed)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="record metrics during the run and write the snapshot here "
        "(.prom/.txt = Prometheus text exposition, else JSON)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="record spans during the run and write a Chrome-trace JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--events-out", type=str, default=None, metavar="PATH",
        help="stream the structured event log to this JSONL file "
        "(repro.events/v1; browse with repro-events tail/query/explain)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in CATALOGUE:
            print(name)
        for name in EXTRAS:
            print(f"{name} (extra)")
        return 0

    scale = ExperimentScale.tiny() if args.tiny else DEFAULT_SCALE
    try:
        dataset = (
            canonical_handle(args.dataset) if args.dataset is not None else None
        )
        if dataset is not None:
            kind = parse_handle(dataset).kind
            if kind not in registered_kinds():
                raise ValueError(
                    f"unknown dataset kind {kind!r}; registered: "
                    f"{sorted(registered_kinds())}"
                )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    status = 0
    known = {**CATALOGUE, **EXTRAS}
    selected: dict[str, tuple[Callable, Callable]] = {}
    for name in args.experiments:
        try:
            selected[name] = known[name]
        except KeyError:
            print(
                f"error: unknown experiment {name!r}; known: "
                f"{', '.join(known)}",
                file=sys.stderr,
            )
            status = 2

    previous_registry = (
        obs.set_registry(obs.MetricsRegistry()) if args.metrics_out else None
    )
    previous_tracer = obs.set_tracer(obs.Tracer()) if args.trace_out else None
    event_log = obs.EventLog(args.events_out) if args.events_out else None
    previous_log = obs.set_event_log(event_log) if event_log else None
    try:
        collected: dict[str, object] = {}
        if args.checkpoint is not None or resolve_n_jobs(args.jobs) > 1:
            # The grid path owns checkpoint/resume, so a --checkpoint run is
            # crash-safe even when it executes serially.
            started = time.perf_counter()
            collected = run_experiment_grid(
                {name: run for name, (run, _) in selected.items()},
                scale, n_jobs=args.jobs, checkpoint_path=args.checkpoint,
                dataset=dataset,
            )
            elapsed = time.perf_counter() - started
            print(f"=== {len(collected)} experiments ({elapsed:.1f}s total) ===")
            for name, (_, render) in selected.items():
                print(f"=== {name} ===")
                print(render(collected[name]))
                print()
        else:
            for name, (run, render) in selected.items():
                started = time.perf_counter()
                # Routed through the grid's cell wrapper so the serial
                # path emits the same grid.* metrics and spans.
                context = (
                    GridContext(scale, dataset) if dataset is not None else scale
                )
                result = _run_one_experiment(context, (name, run))
                collected[name] = result
                elapsed = time.perf_counter() - started
                print(f"=== {name} ({elapsed:.1f}s) ===")
                print(render(result))
                print()
            # The grid path emits its own run_completed.
            emit_run_completed(selected, checkpoint_path=args.checkpoint)

        if args.json is not None and collected:
            from repro.experiments.report import export_results

            export_results(args.json, collected)
            print(f"raw results written to {args.json}")
        if args.metrics_out is not None:
            written, action = obs.merge_or_version_metrics(args.metrics_out)
            print(f"metrics {action}: {written}")
        if args.trace_out is not None:
            obs.write_trace(args.trace_out)
            print(f"trace written to {args.trace_out}")
        if event_log is not None:
            print(f"events written to {event_log.path}")
    finally:
        if args.metrics_out:
            obs.set_registry(previous_registry)
        if args.trace_out:
            obs.set_tracer(previous_tracer)
        if event_log is not None:
            obs.set_event_log(previous_log)
            event_log.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
