"""Table VI: impact of failure prediction on single-drive MTTDL.

Two variants are produced:

* **paper parameters** — the exact (FDR, TIA) operating points the paper
  plugs into formula (7), reproducing Table VI's numbers analytically;
* **measured parameters** — the operating points our own fitted CT, RT
  and BP ANN models achieve on the synthetic fleet, demonstrating the
  same superlinear MTTDL gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnnConfig, CTConfig, RTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.health.model import HealthDegreePredictor
from repro.reliability.analysis import SingleDriveRow, single_drive_table
from repro.reliability.single_drive import PAPER_MODELS, PredictionQuality
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class Table6Result:
    """Both Table VI variants."""

    paper: list[SingleDriveRow]
    measured: list[SingleDriveRow]
    measured_quality: dict[str, PredictionQuality]


def measure_model_quality(
    scale: ExperimentScale = DEFAULT_SCALE, *, n_voters: int = 11
) -> dict[str, PredictionQuality]:
    """(FDR, TIA) of our fitted BP ANN, CT and RT models on family W."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    quality: dict[str, PredictionQuality] = {}

    ann_result = AnnFailurePredictor(AnnConfig()).fit(split).evaluate(
        split, n_voters=n_voters
    )
    ct_result = DriveFailurePredictor(CTConfig()).fit(split).evaluate(
        split, n_voters=n_voters
    )
    rt_result = HealthDegreePredictor(RTConfig()).fit(split).evaluate(
        split, n_voters=n_voters
    )
    for name, result in (("BP ANN", ann_result), ("CT", ct_result), ("RT", rt_result)):
        # A (degenerate) zero-detection model contributes no prediction.
        fdr = min(max(result.fdr, 1e-6), 1.0)
        tia = max(result.mean_tia_hours, 1.0)
        quality[name] = PredictionQuality(fdr=fdr, tia_hours=tia)
    return quality


def run_table6(scale: ExperimentScale = DEFAULT_SCALE) -> Table6Result:
    """Compute both Table VI variants."""
    measured_quality = measure_model_quality(scale)
    return Table6Result(
        paper=single_drive_table(PAPER_MODELS),
        measured=single_drive_table(measured_quality),
        measured_quality=measured_quality,
    )


def render_table6(result: Table6Result) -> str:
    """Both variants in the paper's layout."""
    parts = []
    for title, rows in (
        ("Table VI (paper parameters): MTTDL of a single drive", result.paper),
        ("Table VI (our measured models)", result.measured),
    ):
        table = AsciiTable(["Model", "MTTDL (years)", "% increase"], title=title)
        for row in rows:
            table.add_row([row.model, row.mttdl_years, row.increase_percent])
        parts.append(table.render())
    qualities = ", ".join(
        f"{name}: k={q.fdr:.4f}, TIA={q.tia_hours:.0f}h"
        for name, q in result.measured_quality.items()
    )
    parts.append(f"Measured operating points: {qualities}")
    return "\n\n".join(parts)
