"""Table V: prediction performance on small-sized datasets.

Datasets A, B, C, D randomly keep 10%, 25%, 50% and 75% of family "W"'s
good and failed drives, simulating small and medium data centers; both
models are evaluated with the 11-voter rule.  Expected shape: graceful
degradation as the fleet shrinks, with the CT keeping a reasonably low
FAR throughout and both models keeping ~2-week TIA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnnConfig, CTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.detection.metrics import DetectionResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable

PAPER_FRACTIONS = {"A": 0.10, "B": 0.25, "C": 0.50, "D": 0.75}


@dataclass(frozen=True)
class Table5Row:
    """One row of Table V."""

    model: str
    dataset: str
    fraction: float
    result: DetectionResult


def run_table5(
    scale: ExperimentScale = DEFAULT_SCALE,
    fractions: dict[str, float] | None = None,
    *,
    n_voters: int = 11,
) -> list[Table5Row]:
    """Subsample family "W" at each fraction; fit and evaluate both models."""
    fractions = PAPER_FRACTIONS if fractions is None else fractions
    family_w = paper_family(main_fleet(scale), "W")
    rows = []
    for model_name in ("BP ANN", "CT"):
        for index, (label, fraction) in enumerate(fractions.items()):
            subset = family_w.subsample_drives(fraction, seed=scale.seed + 100 + index)
            split = subset.split(seed=scale.split_seed)
            if model_name == "CT":
                predictor = DriveFailurePredictor(CTConfig()).fit(split)
            else:
                predictor = AnnFailurePredictor(AnnConfig()).fit(split)
            rows.append(
                Table5Row(model_name, label, fraction,
                          predictor.evaluate(split, n_voters=n_voters))
            )
    return rows


def render_table5(rows: list[Table5Row]) -> str:
    """Table V in the paper's layout."""
    table = AsciiTable(
        ["Model", "Dataset", "FAR (%)", "FDR (%)", "TIA (hours)"],
        title="Table V: prediction performance on small-sized datasets",
    )
    for row in rows:
        metrics = row.result.as_percentages()
        table.add_row(
            [row.model, f"{row.dataset} ({row.fraction:.0%})",
             metrics["FAR (%)"], metrics["FDR (%)"], metrics["TIA (hours)"]]
        )
    return table.render()
