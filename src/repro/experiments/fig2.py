"""Figure 2: voting-based detection ROC — CT versus BP ANN on family "W".

One point per voter count N; the CT uses its best 168-hour failed
window, the BP ANN its 12-hour window, exactly as the paper fixes them
after Table IV.  The expected shape: the CT curve sits up-and-left of
the ANN curve, CT FAR falls quickly with N while CT FDR decays slowly,
and the ANN FDR drops off for larger N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnnConfig, CTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.detection.metrics import RocPoint
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable

PAPER_VOTERS = (1, 3, 5, 7, 9, 11, 15, 17, 27)


@dataclass(frozen=True)
class Fig2Curves:
    """The two ROC curves of Figure 2."""

    ct: list[RocPoint]
    ann: list[RocPoint]


def run_fig2(
    scale: ExperimentScale = DEFAULT_SCALE,
    voters: tuple[int, ...] = PAPER_VOTERS,
) -> Fig2Curves:
    """Fit both models once; sweep the voter count at detection time."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    ct = DriveFailurePredictor(CTConfig()).fit(split)
    ann = AnnFailurePredictor(AnnConfig()).fit(split)
    return Fig2Curves(ct=ct.roc(split, voters), ann=ann.roc(split, voters))


def render_fig2(curves: Fig2Curves) -> str:
    """Both curves as (N, FAR%, FDR%) tables."""
    table = AsciiTable(
        ["Model", "Voters N", "FAR (%)", "FDR (%)"],
        title="Figure 2: voting-based detection, CT vs BP ANN (family W)",
    )
    for name, points in (("CT", curves.ct), ("BP ANN", curves.ann)):
        for point in points:
            table.add_row(
                [name, int(point.parameter), 100.0 * point.far, 100.0 * point.fdr]
            )
    return table.render()
