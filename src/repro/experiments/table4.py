"""Table IV: impact of the failed time window on the CT model.

Six windows (12, 24, 48, 96, 168, 240 hours) define which of a failed
drive's last samples become failed training samples; the good training
samples stay fixed.  Adjusting the window trades off FDR against FAR
coarsely (the paper settles on 168 hours for the CT model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CTConfig, SamplingConfig
from repro.core.predictor import DriveFailurePredictor
from repro.detection.metrics import DetectionResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable

PAPER_WINDOWS_HOURS = (12.0, 24.0, 48.0, 96.0, 168.0, 240.0)


@dataclass(frozen=True)
class Table4Row:
    """One row of Table IV."""

    window_hours: float
    result: DetectionResult


def run_table4(
    scale: ExperimentScale = DEFAULT_SCALE,
    windows_hours: tuple[float, ...] = PAPER_WINDOWS_HOURS,
) -> list[Table4Row]:
    """Fit one CT per failed time window on family "W"."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    rows = []
    for window in windows_hours:
        config = CTConfig(sampling=SamplingConfig(failed_window_hours=window))
        ct = DriveFailurePredictor(config).fit(split)
        rows.append(Table4Row(window, ct.evaluate(split, n_voters=1)))
    return rows


def render_table4(rows: list[Table4Row]) -> str:
    """Table IV in the paper's layout."""
    table = AsciiTable(
        ["Time Window", "FAR (%)", "FDR (%)", "TIA (hours)"],
        title="Table IV: impact of time window on CT model",
    )
    for row in rows:
        metrics = row.result.as_percentages()
        table.add_row(
            [f"{row.window_hours:g} hours", metrics["FAR (%)"],
             metrics["FDR (%)"], metrics["TIA (hours)"]]
        )
    return table.render()
