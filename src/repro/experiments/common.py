"""Shared infrastructure for the experiment drivers.

Each driver reproduces one table or figure of the paper on a synthetic
fleet.  Fleet construction is cached per configuration so the drivers
(and the benchmark suite, which runs them all) generate each fleet once.

Scaled-down defaults: the paper's fleet has 25,792 drives; the drivers
default to ~2,500 (7-day experiments) and ~640 (56-day aging
experiments), which keeps every experiment's *comparisons* intact at
benchmark-friendly runtimes (see DESIGN.md §2).  Pass a larger
:class:`ExperimentScale` to push toward paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from time import perf_counter
from typing import Callable, Mapping, Optional, Union

from repro.observability import get_event_log, get_registry, get_tracer
from repro.smart.dataset import SmartDataset
from repro.smart.generator import FleetConfig, default_fleet_config
from repro.utils.checkpoint import JsonCheckpoint, decode_object, encode_object
from repro.utils.parallel import run_tasks


@dataclass(frozen=True)
class ExperimentScale:
    """Fleet sizes used by the drivers.

    ``tiny()`` is for unit tests, the default for benchmarks.
    """

    w_good: int = 2_000
    w_failed: int = 90
    q_good: int = 500
    q_failed: int = 30
    aging_w_good: int = 600
    aging_w_failed: int = 40
    aging_q_good: int = 300
    aging_q_failed: int = 25
    seed: int = 7
    split_seed: int = 8

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """A minutes-to-seconds scale for tests."""
        return cls(
            w_good=120, w_failed=16, q_good=60, q_failed=10,
            aging_w_good=60, aging_w_failed=10, aging_q_good=40, aging_q_failed=8,
        )


DEFAULT_SCALE = ExperimentScale()


# Each (config, seed) fleet is a few hundred MB-equivalent of drive
# histories; the explicit maxsize bounds how many a long benchmark
# session can hold alive at once.
@lru_cache(maxsize=8)
def _cached_fleet(
    w_good: int, w_failed: int, q_good: int, q_failed: int,
    collection_days: int, seed: int,
) -> SmartDataset:
    config = default_fleet_config(
        w_good=w_good, w_failed=w_failed, q_good=q_good, q_failed=q_failed,
        collection_days=collection_days, seed=seed,
    )
    return SmartDataset.generate(config)


def main_fleet(scale: ExperimentScale = DEFAULT_SCALE) -> SmartDataset:
    """The 7-day two-family fleet behind the Section V-A/V-B experiments."""
    return _cached_fleet(
        scale.w_good, scale.w_failed, scale.q_good, scale.q_failed, 7, scale.seed
    )


def aging_fleet(scale: ExperimentScale = DEFAULT_SCALE) -> SmartDataset:
    """The 56-day fleet behind the model-updating experiments (Figs 6-9)."""
    return _cached_fleet(
        scale.aging_w_good, scale.aging_w_failed,
        scale.aging_q_good, scale.aging_q_failed, 56, scale.seed,
    )


def clear_fleet_cache() -> None:
    """Drop every cached fleet.

    Long benchmark sessions sweep several scales; clearing between
    sweeps releases the fleets the LRU bound has not yet evicted.
    """
    _cached_fleet.cache_clear()


def _run_one_experiment(scale: ExperimentScale, task):
    """Run one experiment driver (module-level for worker processes)."""
    name, run = task
    registry = get_registry()
    start = perf_counter() if registry.enabled else 0.0
    with get_tracer().span("grid.cell", category="grid", experiment=name):
        result = run(scale)
    registry.counter("grid.cells", help="experiment cells computed").inc()
    if registry.enabled:
        registry.histogram(
            "grid.cell_seconds", unit="seconds", help="experiment cell wall time"
        ).observe(perf_counter() - start)
    return result


def grid_checkpoint_id(checkpoint_path: Optional[Union[str, Path]]) -> Optional[str]:
    """Stable identifier of a grid's checkpoint (``None`` without one).

    ``kind:filename`` — enough for the ``run_completed`` event to name
    the resumable artefact without leaking absolute paths into logs
    that may be shipped off-host.
    """
    if checkpoint_path is None:
        return None
    return f"experiment-grid:{Path(checkpoint_path).name}"


def emit_run_completed(
    names,
    *,
    checkpoint_path: Optional[Union[str, Path]] = None,
    n_cached: int = 0,
) -> None:
    """Emit the ``run_completed`` event closing an experiment run."""
    log = get_event_log()
    if not log.enabled:
        return
    checkpoint_id = grid_checkpoint_id(checkpoint_path)
    log.emit(
        "run_completed",
        experiments=list(names),
        n_cells=len(list(names)),
        n_cached=int(n_cached),
        **({"checkpoint_id": checkpoint_id} if checkpoint_id is not None else {}),
    )


def run_experiment_grid(
    runs: Mapping[str, Callable[[ExperimentScale], object]],
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_jobs: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> dict[str, object]:
    """Run a grid of experiment drivers, optionally across processes.

    ``runs`` maps experiment ids to their module-level ``run_*``
    callables; results come back keyed and ordered like ``runs``.
    ``n_jobs`` fans the drivers out across worker processes (``None``
    defers to ``REPRO_N_JOBS``).  Every driver is deterministic given
    ``scale``, so results are identical at any ``n_jobs``; note each
    worker starts with an empty fleet cache and regenerates the fleets
    it needs.

    ``checkpoint_path`` makes the grid crash-safe: every finished cell
    is persisted to the JSON checkpoint as it completes, and a rerun
    with the same path loads finished cells instead of recomputing them
    — a grid killed at cell k resumes at cell k, bit-identical to an
    uninterrupted run.  ``retries``/``timeout`` pass through to
    :func:`repro.utils.parallel.run_tasks`.
    """
    names = list(runs)
    checkpoint = None
    done: dict[str, object] = {}
    if checkpoint_path is not None:
        checkpoint = JsonCheckpoint(checkpoint_path, kind="experiment-grid")
        done = {
            name: decode_object(checkpoint.get(name))
            for name in names
            if name in checkpoint
        }
        get_registry().counter(
            "grid.checkpoint_hits", help="cells reloaded from checkpoint"
        ).inc(len(done))
    pending = [name for name in names if name not in done]

    def record(index: int, result: object) -> None:
        checkpoint.set(pending[index], encode_object(result))

    fresh = run_tasks(
        _run_one_experiment,
        [(name, runs[name]) for name in pending],
        n_jobs=n_jobs,
        context=scale,
        retries=retries,
        timeout=timeout,
        on_result=record if checkpoint is not None else None,
    )
    done.update(zip(pending, fresh))
    emit_run_completed(
        names,
        checkpoint_path=checkpoint_path,
        n_cached=len(names) - len(pending),
    )
    return {name: done[name] for name in names}
