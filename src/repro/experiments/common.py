"""Shared infrastructure for the experiment drivers.

Each driver reproduces one table or figure of the paper on a synthetic
fleet.  Fleet construction is cached per configuration so the drivers
(and the benchmark suite, which runs them all) generate each fleet once.

Scaled-down defaults: the paper's fleet has 25,792 drives; the drivers
default to ~2,500 (7-day experiments) and ~640 (56-day aging
experiments), which keeps every experiment's *comparisons* intact at
benchmark-friendly runtimes (see DESIGN.md §2).  Pass a larger
:class:`ExperimentScale` to push toward paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from time import perf_counter
from typing import Callable, Mapping, Optional, Union

from repro.observability import get_event_log, get_registry, get_tracer
from repro.smart.dataset import SmartDataset
from repro.smart.generator import FleetConfig, default_fleet_config
from repro.smart.registry import canonical_handle, resolve
from repro.utils.checkpoint import JsonCheckpoint, decode_object, encode_object
from repro.utils.parallel import run_tasks


@dataclass(frozen=True)
class ExperimentScale:
    """Fleet sizes used by the drivers.

    ``tiny()`` is for unit tests, the default for benchmarks.
    """

    w_good: int = 2_000
    w_failed: int = 90
    q_good: int = 500
    q_failed: int = 30
    aging_w_good: int = 600
    aging_w_failed: int = 40
    aging_q_good: int = 300
    aging_q_failed: int = 25
    seed: int = 7
    split_seed: int = 8

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """A minutes-to-seconds scale for tests."""
        return cls(
            w_good=120, w_failed=16, q_good=60, q_failed=10,
            aging_w_good=60, aging_w_failed=10, aging_q_good=40, aging_q_failed=8,
        )


DEFAULT_SCALE = ExperimentScale()


@dataclass(frozen=True)
class GridContext:
    """What one grid cell needs to run: the scale plus the dataset.

    ``dataset`` is a canonical registry handle
    (:func:`repro.smart.registry.canonical_handle`) or ``None`` for the
    scale's synthetic fleets.  Shipped as the :func:`run_tasks` shared
    context, so worker processes install the same dataset override the
    serial path does.
    """

    scale: ExperimentScale
    dataset: Optional[str] = None


#: When set (a canonical registry handle), :func:`main_fleet` and
#: :func:`aging_fleet` resolve it instead of generating synthetic
#: fleets — the hook that lets every unmodified driver run on real
#: traces.  Managed by :func:`set_dataset_override`, installed around
#: each cell by :func:`_run_one_experiment`.
_DATASET_OVERRIDE: Optional[str] = None


def set_dataset_override(handle: Optional[str]) -> Optional[str]:
    """Install (or clear, with ``None``) the grid's dataset override.

    Returns the previous override so callers can restore it::

        previous = set_dataset_override("backblaze:/data/q1-store")
        try:
            ...
        finally:
            set_dataset_override(previous)
    """
    global _DATASET_OVERRIDE
    previous = _DATASET_OVERRIDE
    _DATASET_OVERRIDE = (
        canonical_handle(handle) if handle is not None else None
    )
    return previous


def paper_family(fleet: SmartDataset, role: str = "W") -> SmartDataset:
    """The sub-fleet playing one of the paper's family roles.

    The paper's experiments run on drive family "W" (Tables III-VI,
    most figures) with family "Q" as the smaller secondary (Figure 5).
    Synthetic fleets carry those literal labels, so this is exactly
    ``fleet.filter_family(role)`` for them — bit-identical to the
    historical drivers.  Real datasets label families by drive model;
    there, role ``"W"`` maps to the largest family by drive count and
    ``"Q"`` to the second largest (ties broken by name, so the mapping
    is deterministic), falling back to the largest when only one family
    exists.  This is the one seam every driver goes through, which is
    what makes registry datasets drop-in for the whole grid.
    """
    if role not in ("W", "Q"):
        raise ValueError(f"family role must be 'W' or 'Q', got {role!r}")
    families = fleet.families()
    if role in families:
        return fleet.filter_family(role)
    summary = fleet.summary()
    ranked = sorted(
        summary,
        key=lambda name: (
            -(summary[name]["good"] + summary[name]["failed"]), name
        ),
    )
    if role == "Q" and len(ranked) > 1:
        return fleet.filter_family(ranked[1])
    return fleet.filter_family(ranked[0])


# Each (config, seed) fleet is a few hundred MB-equivalent of drive
# histories; the explicit maxsize bounds how many a long benchmark
# session can hold alive at once.
@lru_cache(maxsize=8)
def _cached_fleet(
    w_good: int, w_failed: int, q_good: int, q_failed: int,
    collection_days: int, seed: int,
) -> SmartDataset:
    config = default_fleet_config(
        w_good=w_good, w_failed=w_failed, q_good=q_good, q_failed=q_failed,
        collection_days=collection_days, seed=seed,
    )
    return SmartDataset.generate(config)


def main_fleet(scale: ExperimentScale = DEFAULT_SCALE) -> SmartDataset:
    """The fleet behind the Section V-A/V-B experiments.

    The scale's synthetic 7-day two-family fleet — unless a dataset
    override is installed (``repro-experiments --dataset``,
    :func:`set_dataset_override`), in which case the registry handle's
    dataset is returned instead.
    """
    if _DATASET_OVERRIDE is not None:
        return resolve(_DATASET_OVERRIDE)
    return _cached_fleet(
        scale.w_good, scale.w_failed, scale.q_good, scale.q_failed, 7, scale.seed
    )


def aging_fleet(scale: ExperimentScale = DEFAULT_SCALE) -> SmartDataset:
    """The fleet behind the model-updating experiments (Figs 6-9).

    The scale's synthetic 56-day fleet; under a dataset override this is
    the override dataset itself (real traces carry one collection
    period, so the aging experiments slice whatever history it has).
    """
    if _DATASET_OVERRIDE is not None:
        return resolve(_DATASET_OVERRIDE)
    return _cached_fleet(
        scale.aging_w_good, scale.aging_w_failed,
        scale.aging_q_good, scale.aging_q_failed, 56, scale.seed,
    )


def clear_fleet_cache() -> None:
    """Drop every cached fleet.

    Long benchmark sessions sweep several scales; clearing between
    sweeps releases the fleets the LRU bound has not yet evicted.
    """
    _cached_fleet.cache_clear()


def _run_one_experiment(context: Union[ExperimentScale, GridContext], task):
    """Run one experiment driver (module-level for worker processes).

    ``context`` is either a bare :class:`ExperimentScale` (synthetic
    fleets, the historical shape) or a :class:`GridContext` carrying a
    dataset handle, which is installed as the fleet override for the
    duration of the cell — in worker processes the override starts
    clean, so install/restore keeps serial in-process runs equivalent.
    """
    if isinstance(context, GridContext):
        scale, dataset = context.scale, context.dataset
    else:
        scale, dataset = context, None
    name, run = task
    registry = get_registry()
    start = perf_counter() if registry.enabled else 0.0
    previous = set_dataset_override(dataset) if dataset is not None else None
    try:
        with get_tracer().span("grid.cell", category="grid", experiment=name):
            result = run(scale)
    finally:
        if dataset is not None:
            set_dataset_override(previous)
    registry.counter("grid.cells", help="experiment cells computed").inc()
    if registry.enabled:
        registry.histogram(
            "grid.cell_seconds", unit="seconds", help="experiment cell wall time"
        ).observe(perf_counter() - start)
    return result


def grid_checkpoint_id(checkpoint_path: Optional[Union[str, Path]]) -> Optional[str]:
    """Stable identifier of a grid's checkpoint (``None`` without one).

    ``kind:filename`` — enough for the ``run_completed`` event to name
    the resumable artefact without leaking absolute paths into logs
    that may be shipped off-host.
    """
    if checkpoint_path is None:
        return None
    return f"experiment-grid:{Path(checkpoint_path).name}"


def emit_run_completed(
    names,
    *,
    checkpoint_path: Optional[Union[str, Path]] = None,
    n_cached: int = 0,
) -> None:
    """Emit the ``run_completed`` event closing an experiment run."""
    log = get_event_log()
    if not log.enabled:
        return
    checkpoint_id = grid_checkpoint_id(checkpoint_path)
    log.emit(
        "run_completed",
        experiments=list(names),
        n_cells=len(list(names)),
        n_cached=int(n_cached),
        **({"checkpoint_id": checkpoint_id} if checkpoint_id is not None else {}),
    )


#: Checkpoint cell recording the grid's dataset handle; resuming a
#: checkpoint written against a different dataset is an error, not a
#: silent mix of cached and fresh cells from different data.
_DATASET_GUARD_CELL = "__dataset__"


def run_experiment_grid(
    runs: Mapping[str, Callable[[ExperimentScale], object]],
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_jobs: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    dataset: Optional[str] = None,
) -> dict[str, object]:
    """Run a grid of experiment drivers, optionally across processes.

    ``runs`` maps experiment ids to their module-level ``run_*``
    callables; results come back keyed and ordered like ``runs``.
    ``n_jobs`` fans the drivers out across worker processes (``None``
    defers to ``REPRO_N_JOBS``).  Every driver is deterministic given
    ``scale``, so results are identical at any ``n_jobs``; note each
    worker starts with an empty fleet cache and regenerates the fleets
    it needs.

    ``dataset`` is a registry handle (``kind:path?params``, see
    :mod:`repro.smart.registry`); when given, every driver's
    :func:`main_fleet`/:func:`aging_fleet` resolves it instead of the
    synthetic fleets — synthetic and real datasets are interchangeable
    here, and results stay identical at any ``n_jobs`` because a handle
    resolves to the same drives in every process.

    ``checkpoint_path`` makes the grid crash-safe: every finished cell
    is persisted to the JSON checkpoint as it completes, and a rerun
    with the same path loads finished cells instead of recomputing them
    — a grid killed at cell k resumes at cell k, bit-identical to an
    uninterrupted run.  The checkpoint records the dataset handle;
    resuming it with a different ``dataset`` raises ``ValueError``.
    ``retries``/``timeout`` pass through to
    :func:`repro.utils.parallel.run_tasks`.
    """
    names = list(runs)
    handle = canonical_handle(dataset) if dataset is not None else None
    checkpoint = None
    done: dict[str, object] = {}
    if checkpoint_path is not None:
        checkpoint = JsonCheckpoint(checkpoint_path, kind="experiment-grid")
        guard = checkpoint.get(_DATASET_GUARD_CELL)
        if len(checkpoint) and guard != handle:
            raise ValueError(
                f"checkpoint {checkpoint.path} was written for dataset "
                f"{guard!r}, not {handle!r}; use a fresh checkpoint path "
                "per dataset"
            )
        if handle is not None and _DATASET_GUARD_CELL not in checkpoint:
            checkpoint.set(_DATASET_GUARD_CELL, handle)
        done = {
            name: decode_object(checkpoint.get(name))
            for name in names
            if name in checkpoint
        }
        get_registry().counter(
            "grid.checkpoint_hits", help="cells reloaded from checkpoint"
        ).inc(len(done))
    pending = [name for name in names if name not in done]

    def record(index: int, result: object) -> None:
        checkpoint.set(pending[index], encode_object(result))

    fresh = run_tasks(
        _run_one_experiment,
        [(name, runs[name]) for name in pending],
        n_jobs=n_jobs,
        context=GridContext(scale, handle) if handle is not None else scale,
        retries=retries,
        timeout=timeout,
        on_result=record if checkpoint is not None else None,
    )
    done.update(zip(pending, fresh))
    emit_run_completed(
        names,
        checkpoint_path=checkpoint_path,
        n_cached=len(names) - len(pending),
    )
    return {name: done[name] for name in names}
