"""Figure 12: MTTDL of four RAID systems versus fleet size.

Compares, as the number of drives grows toward 2,500:

* SAS RAID-6 without prediction (formula 8, MTTF 1,990,000h);
* SATA RAID-6 without prediction (formula 8, MTTF 1,390,000h);
* SATA RAID-6 with the CT model (the Figure 11 Markov chain);
* SATA RAID-5 with the CT model (Eckart-style chain).

Expected shape: the predictive SATA RAID-6 beats even the SAS RAID-6
by orders of magnitude, and the predictive SATA RAID-5 lands near the
non-predictive RAID-6 curves — the paper's cost argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale
from repro.reliability.analysis import RaidCurvePoint, raid_comparison_curves
from repro.reliability.single_drive import PAPER_MODELS, PredictionQuality
from repro.utils.tables import AsciiTable

#: Fleet sizes sampled along the x axis (the paper plots to 2,500 drives).
PAPER_FLEET_SIZES = (10, 25, 50, 100, 250, 500, 1000, 1500, 2000, 2500)


@dataclass(frozen=True)
class Fig12Result:
    """The four Figure 12 curves sampled at each fleet size."""

    points: list[RaidCurvePoint]
    quality: PredictionQuality


def run_fig12(
    scale: ExperimentScale = DEFAULT_SCALE,
    fleet_sizes: Sequence[int] = PAPER_FLEET_SIZES,
    *,
    quality: Optional[PredictionQuality] = None,
) -> Fig12Result:
    """Evaluate the four system models (paper CT operating point by default)."""
    quality = quality or PAPER_MODELS["CT"]
    return Fig12Result(
        points=raid_comparison_curves(list(fleet_sizes), quality=quality),
        quality=quality,
    )


def render_fig12(result: Fig12Result) -> str:
    """The four curves as a drives-by-system table (MTTDL in million years)."""
    table = AsciiTable(
        [
            "Drives",
            "SAS RAID-6 w/o pred (My)",
            "SATA RAID-6 w/o pred (My)",
            "SATA RAID-6 w/ CT (My)",
            "SATA RAID-5 w/ CT (My)",
        ],
        title=(
            "Figure 12: MTTDL of RAID systems "
            f"(CT k={result.quality.fdr:.4f}, TIA={result.quality.tia_hours:.0f}h)"
        ),
    )
    for point in result.points:
        table.add_row(
            [
                point.n_drives,
                point.sas_raid6_years / 1e6,
                point.sata_raid6_years / 1e6,
                point.sata_raid6_ct_years / 1e6,
                point.sata_raid5_ct_years / 1e6,
            ]
        )
    return table.render()
