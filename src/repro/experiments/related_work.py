"""Section II landscape: the prior approaches versus the CT.

The paper's related work orders the field: vendor thresholds detect
3-10% of failures (deliberately), the non-parametric statistical tests
reach mid-range detection at low FAR (Hughes: 60% at 0.5%), the early
learners (naive Bayes, Mahalanobis) sit between, and the tree models
top the table.  This driver evaluates our implementations of all of
them under the identical protocol and prints that table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hmm import HmmPredictor
from repro.baselines.mahalanobis import MahalanobisModel
from repro.baselines.naive_bayes import NaiveBayesModel
from repro.baselines.ranksum import RankSumPredictor
from repro.baselines.svm import LinearSVMModel
from repro.baselines.threshold import ThresholdModel
from repro.core.config import CTConfig
from repro.core.predictor import DriveFailurePredictor, GenericFailurePredictor
from repro.detection.metrics import DetectionResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class RelatedWorkRow:
    """One model's drive-level outcome."""

    model: str
    result: DetectionResult


def run_related_work(
    scale: ExperimentScale = DEFAULT_SCALE, *, n_voters: int = 11
) -> list[RelatedWorkRow]:
    """Evaluate the Section II baselines and the CT on family W."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    rows = []

    vendor = GenericFailurePredictor(
        ThresholdModel.vendor, failed_share=None
    ).fit(split)
    rows.append(
        RelatedWorkRow("vendor thresholds", vendor.evaluate(split, n_voters=1))
    )

    rank_sum = RankSumPredictor().fit(split)
    rows.append(
        RelatedWorkRow("rank-sum (Hughes)", rank_sum.evaluate(split, n_voters=n_voters))
    )

    naive_bayes = GenericFailurePredictor(
        lambda: NaiveBayesModel(n_bins=8)
    ).fit(split)
    rows.append(
        RelatedWorkRow(
            "naive Bayes (Hamerly)", naive_bayes.evaluate(split, n_voters=n_voters)
        )
    )

    mahalanobis = GenericFailurePredictor(
        lambda: MahalanobisModel(), failed_share=None
    ).fit(split)
    rows.append(
        RelatedWorkRow(
            "Mahalanobis (Wang)", mahalanobis.evaluate(split, n_voters=n_voters)
        )
    )

    svm = GenericFailurePredictor(lambda: LinearSVMModel()).fit(split)
    rows.append(
        RelatedWorkRow("SVM (Murray)", svm.evaluate(split, n_voters=n_voters))
    )

    hmm = HmmPredictor().fit(split)
    rows.append(
        RelatedWorkRow("HMM (Zhao)", hmm.evaluate(split, n_voters=n_voters))
    )

    ct = DriveFailurePredictor(CTConfig()).fit(split)
    rows.append(RelatedWorkRow("CT (this paper)", ct.evaluate(split, n_voters=n_voters)))
    return rows


def render_related_work(rows: list[RelatedWorkRow]) -> str:
    """The Section II landscape as a table."""
    table = AsciiTable(
        ["Approach", "FAR (%)", "FDR (%)", "TIA (hours)"],
        title="Related work (Section II) under the paper's protocol",
    )
    for row in rows:
        metrics = row.result.as_percentages()
        table.add_row(
            [row.model, metrics["FAR (%)"], metrics["FDR (%)"],
             metrics["TIA (hours)"]]
        )
    return table.render()
