"""Figure 10: ROC curves of the RT health-degree model vs the RT classifier.

Two regression trees on family "W": one trained on deterioration-window
health degrees (personalised windows from a CT, formula 6), one on plain
+/-1 targets (the control group).  Both are swept over their output
threshold with the 11-sample mean-vote rule.  Expected shape: the health
-degree curve sits closer to the upper-left corner and reaches a higher
maximum FDR.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import RTConfig
from repro.detection.metrics import RocPoint
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.health.model import HealthDegreePredictor
from repro.utils.tables import AsciiTable

#: The paper's threshold sweeps (Figure 10 caption).
HEALTH_THRESHOLDS = (-0.5, -0.37, -0.3, -0.2, -0.1, -0.02, 0.0)
CLASSIFIER_THRESHOLDS = (-0.94, -0.86, -0.6, -0.4, -0.2, -0.05, 0.0)


@dataclass(frozen=True)
class Fig10Curves:
    """The two Figure 10 ROC curves."""

    health: list[RocPoint]
    classifier: list[RocPoint]


def run_fig10(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_voters: int = 11,
    health_thresholds: tuple[float, ...] = HEALTH_THRESHOLDS,
    classifier_thresholds: tuple[float, ...] = CLASSIFIER_THRESHOLDS,
) -> Fig10Curves:
    """Fit both RT variants and sweep their detection thresholds."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    health = HealthDegreePredictor(RTConfig(targets="health")).fit(split)
    control = HealthDegreePredictor(RTConfig(targets="binary")).fit(split)
    return Fig10Curves(
        health=health.roc(split, health_thresholds, n_voters=n_voters),
        classifier=control.roc(split, classifier_thresholds, n_voters=n_voters),
    )


def render_fig10(curves: Fig10Curves) -> str:
    """Both threshold sweeps as (threshold, FAR%, FDR%) tables."""
    table = AsciiTable(
        ["Model", "Threshold", "FAR (%)", "FDR (%)"],
        title="Figure 10: ROC of RT health-degree model vs RT classifier",
    )
    for name, points in (
        ("health degree", curves.health),
        ("classifier", curves.classifier),
    ):
        for point in points:
            table.add_row(
                [name, point.parameter, 100.0 * point.far, 100.0 * point.fdr]
            )
    return table.render()
