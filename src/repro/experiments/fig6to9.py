"""Figures 6-9: false alarm rate over weeks under five updating strategies.

Four panels — {CT, BP ANN} x {family W, family Q} — each showing FAR per
test week (2..8) for fixed / accumulation / 1,2,3-week replacing.
Expected shape: the fixed strategy's FAR climbs steeply in the late
weeks, accumulation sits in between, replacing (1-week in particular)
stays low; the CT's FDR stays high and steady throughout while the BP
ANN's fluctuates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import AnnConfig, CTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.experiments.common import (
    DEFAULT_SCALE, ExperimentScale, aging_fleet, paper_family,
)
from repro.updating.simulator import UpdatingReport, simulate_updating
from repro.updating.strategies import paper_strategies
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class UpdatingPanel:
    """One figure panel: a model/family pair with one report per strategy."""

    figure: str
    model: str
    family: str
    reports: tuple[UpdatingReport, ...]


_PANELS: tuple[tuple[str, str, str], ...] = (
    ("Figure 6", "CT", "W"),
    ("Figure 7", "BP ANN", "W"),
    ("Figure 8", "CT", "Q"),
    ("Figure 9", "BP ANN", "Q"),
)


def _factory(model: str) -> Callable:
    if model == "CT":
        return lambda: DriveFailurePredictor(CTConfig())
    return lambda: AnnFailurePredictor(AnnConfig())


def run_fig6to9(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_weeks: int = 8,
    n_voters: int = 11,
    panels: tuple[tuple[str, str, str], ...] = _PANELS,
) -> list[UpdatingPanel]:
    """Run the weekly simulation for every (model, family) panel."""
    fleet = aging_fleet(scale)
    results = []
    for figure, model, family in panels:
        reports = simulate_updating(
            paper_family(fleet, family),
            _factory(model),
            paper_strategies(),
            n_weeks=n_weeks,
            n_voters=n_voters,
            split_seed=scale.split_seed,
        )
        results.append(
            UpdatingPanel(figure=figure, model=model, family=family,
                          reports=tuple(reports))
        )
    return results


def render_fig6to9(panels: list[UpdatingPanel]) -> str:
    """Each panel as a strategies-by-weeks FAR% table."""
    parts = []
    for panel in panels:
        weeks = [week for week, _ in panel.reports[0].far_percent_by_week()]
        table = AsciiTable(
            ["Strategy"] + [f"wk{week}" for week in weeks],
            title=f"{panel.figure}: FAR% of {panel.model} with updating "
            f"on family {panel.family}",
        )
        for report in panel.reports:
            table.add_row(
                [report.strategy] + [far for _, far in report.far_percent_by_week()]
            )
        parts.append(table.render())
    return "\n\n".join(parts)
