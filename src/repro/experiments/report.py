"""Machine-readable experiment results.

The drivers return typed dataclasses; this module flattens any of them
into JSON-able dictionaries so runs can be archived, diffed across
library versions, or consumed by plotting tools.  Dataclasses are
converted recursively; numpy scalars/arrays become plain Python;
properties that carry the headline metrics (``far``, ``fdr``,
``mean_tia_hours``, ``total``...) are materialised alongside the raw
fields so downstream consumers never need to re-derive them.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

#: Property names worth materialising when present on a dataclass.
_MATERIALIZED_PROPERTIES = (
    "far",
    "fdr",
    "mean_tia_hours",
    "total",
    "combined",
    "drifted",
    "n_retrains",
    "separation",
    "non_normal",
)


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-able values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        for name in _MATERIALIZED_PROPERTIES:
            if hasattr(type(value), name) and isinstance(
                getattr(type(value), name), property
            ):
                payload[name] = to_jsonable(getattr(value, name))
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    raise TypeError(
        f"cannot convert {type(value).__name__} to a JSON-able value"
    )


def export_results(
    path: Union[str, Path], results: dict[str, Any]
) -> None:
    """Write a ``{experiment_id: result}`` mapping as a JSON document."""
    document = {name: to_jsonable(result) for name, result in results.items()}
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))


def load_results(path: Union[str, Path]) -> dict[str, Any]:
    """Load a document written by :func:`export_results` (plain dicts)."""
    return json.loads(Path(path).read_text())
