"""Experiment drivers: one module per table/figure of the paper.

See :data:`repro.experiments.runner.CATALOGUE` for the full index and
DESIGN.md for the experiment-to-module map.
"""

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, aging_fleet, main_fleet
from repro.experiments.runner import CATALOGUE, run_experiment

__all__ = [
    "CATALOGUE",
    "DEFAULT_SCALE",
    "ExperimentScale",
    "aging_fleet",
    "main_fleet",
    "run_experiment",
]
