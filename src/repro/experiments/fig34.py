"""Figures 3 and 4: distribution of time in advance.

Histograms (bins 0-24, 25-72, 73-168, 169-336, 337-450 hours) of the
lead time of every correct detection, for the BP ANN (Figure 3) and the
CT (Figure 4) at fixed voting operating points.  The paper's shape:
nearly all detections land 24+ hours ahead, the top bin dominates, and
the mean exceeds two weeks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnnConfig, CTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.detection.metrics import TIA_BIN_LABELS, DetectionResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import render_histogram


@dataclass(frozen=True)
class Fig34Histograms:
    """TIA results for both models at their Figure 3/4 operating points."""

    ann: DetectionResult
    ct: DetectionResult


def run_fig34(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    ann_voters: int = 11,
    ct_voters: int = 27,
) -> Fig34Histograms:
    """Evaluate both fitted models and keep the per-detection TIA values.

    The paper plots BP ANN at its 84.21%-detection point and CT at its
    93.23%/27-voter point; we use the corresponding voter counts.
    """
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    ann = AnnFailurePredictor(AnnConfig()).fit(split)
    ct = DriveFailurePredictor(CTConfig()).fit(split)
    return Fig34Histograms(
        ann=ann.evaluate(split, n_voters=ann_voters),
        ct=ct.evaluate(split, n_voters=ct_voters),
    )


def render_fig34(histograms: Fig34Histograms) -> str:
    """Both histograms as ASCII bar charts."""
    parts = []
    for title, result in (
        ("Figure 3: TIA distribution, BP ANN", histograms.ann),
        ("Figure 4: TIA distribution, CT", histograms.ct),
    ):
        parts.append(
            render_histogram(
                TIA_BIN_LABELS,
                result.tia_histogram(),
                title=f"{title} (mean {result.mean_tia_hours:.1f}h, "
                f"{result.n_detected} detections)",
            )
        )
    return "\n\n".join(parts)
