"""Figure 5: CT versus BP ANN on the (much smaller) drive family "Q".

Same voting sweep as Figure 2 but with models trained and tested on
family "Q".  Expected shape: both models degrade relative to family "W"
(fewer drives), the CT stays usable (FAR under ~1%, high FDR), and the
CT-over-ANN gap widens — the paper's stability argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AnnConfig, CTConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.detection.metrics import RocPoint
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable

PAPER_VOTERS_Q = (1, 3, 5, 11, 17)


@dataclass(frozen=True)
class Fig5Curves:
    """The two family-"Q" ROC curves plus the fitted CT's failure attributes."""

    ct: list[RocPoint]
    ann: list[RocPoint]
    ct_failure_attributes: tuple[str, ...]


def run_fig5(
    scale: ExperimentScale = DEFAULT_SCALE,
    voters: tuple[int, ...] = PAPER_VOTERS_Q,
) -> Fig5Curves:
    """Fit and sweep both models on family "Q"."""
    split = paper_family(main_fleet(scale), "Q").split(seed=scale.split_seed)
    ct = DriveFailurePredictor(CTConfig()).fit(split)
    ann = AnnFailurePredictor(AnnConfig()).fit(split)
    return Fig5Curves(
        ct=ct.roc(split, voters),
        ann=ann.roc(split, voters),
        ct_failure_attributes=tuple(ct.failure_attributes()),
    )


def render_fig5(curves: Fig5Curves) -> str:
    """Both curves plus the interpretability readout of Section V-B1."""
    table = AsciiTable(
        ["Model", "Voters N", "FAR (%)", "FDR (%)"],
        title="Figure 5: CT vs BP ANN on family Q",
    )
    for name, points in (("CT", curves.ct), ("BP ANN", curves.ann)):
        for point in points:
            table.add_row(
                [name, int(point.parameter), 100.0 * point.far, 100.0 * point.fdr]
            )
    attributes = ", ".join(curves.ct_failure_attributes)
    return f"{table.render()}\nCT failure-inducing attributes (Q): {attributes}"
