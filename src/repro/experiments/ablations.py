"""Ablation studies on the design choices DESIGN.md calls out.

Not part of the paper's tables/figures, but each ablation probes one of
the paper's design decisions on the same synthetic fleet:

* **loss weight** — Section V-A3 penalises false alarms 10x; the sweep
  shows FAR falling as the penalty grows.
* **failed share** — the 20%/80% re-weighting; the sweep traces the
  FDR/FAR trade-off it controls.
* **CP** — the pruning knob; the sweep shows tree size shrinking and
  generalisation (FAR) improving up to a point.
* **deterioration windows** — Section III-B claims personalised windows
  beat a single global one for the RT health model.
* **model zoo** — the paper's future work (random forest) and related
  work (AdaBoost) against the CT under the identical protocol.
* **adaptive updating** — the drift-triggered retraining extension
  versus the paper's calendar strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.config import CTConfig, RTConfig
from repro.core.predictor import DriveFailurePredictor, GenericFailurePredictor
from repro.detection.metrics import DetectionResult
from repro.experiments.common import (
    DEFAULT_SCALE, ExperimentScale, aging_fleet, main_fleet, paper_family,
)
from repro.features.selection import critical_features
from repro.health.model import HealthDegreePredictor
from repro.tree.boosting import AdaBoostClassifier
from repro.tree.forest import RandomForestClassifier
from repro.updating.drift import AdaptiveReport, DriftDetector, simulate_adaptive_updating
from repro.updating.simulator import UpdatingReport, simulate_updating
from repro.updating.strategies import FixedStrategy, ReplacingStrategy
from repro.utils.tables import AsciiTable


@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation sweep."""

    label: str
    result: DetectionResult
    detail: str = ""


def _w_split(scale: ExperimentScale):
    return paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)


def sweep_loss_weight(
    scale: ExperimentScale = DEFAULT_SCALE,
    weights: Sequence[float] = (1.0, 5.0, 10.0, 20.0),
    *,
    n_voters: int = 11,
) -> list[AblationRow]:
    """False-alarm loss weight sweep (paper value: 10)."""
    split = _w_split(scale)
    rows = []
    for weight in weights:
        config = CTConfig(false_alarm_loss_weight=weight)
        predictor = DriveFailurePredictor(config).fit(split)
        rows.append(
            AblationRow(
                label=f"loss={weight:g}",
                result=predictor.evaluate(split, n_voters=n_voters),
            )
        )
    return rows


def sweep_failed_share(
    scale: ExperimentScale = DEFAULT_SCALE,
    shares: Sequence[float] = (0.05, 0.2, 0.5),
    *,
    n_voters: int = 11,
) -> list[AblationRow]:
    """Failed-class training share sweep (paper value: 0.2)."""
    split = _w_split(scale)
    rows = []
    for share in shares:
        predictor = DriveFailurePredictor(CTConfig(failed_share=share)).fit(split)
        rows.append(
            AblationRow(
                label=f"failed_share={share:g}",
                result=predictor.evaluate(split, n_voters=n_voters),
            )
        )
    return rows


def sweep_cp(
    scale: ExperimentScale = DEFAULT_SCALE,
    cps: Sequence[float] = (0.0, 0.001, 0.004, 0.02),
    *,
    n_voters: int = 11,
) -> list[AblationRow]:
    """Pruning-strength sweep; detail records the fitted tree size."""
    split = _w_split(scale)
    rows = []
    for cp in cps:
        predictor = DriveFailurePredictor(CTConfig(cp=cp)).fit(split)
        rows.append(
            AblationRow(
                label=f"cp={cp:g}",
                result=predictor.evaluate(split, n_voters=n_voters),
                detail=f"{predictor.tree_.n_leaves_} leaves",
            )
        )
    return rows


#: Threshold sweep shared by both window modes (Figure 10's health sweep
#: extended toward -1 so the global-window model's colder outputs are
#: also covered).
WINDOW_MODE_THRESHOLDS = (-0.9, -0.7, -0.5, -0.37, -0.3, -0.2, -0.1, -0.02, 0.0)


def compare_window_modes(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_voters: int = 11,
    max_far: float = 0.01,
) -> list[AblationRow]:
    """Personalised vs global deterioration windows for the RT model.

    The global variant forces every failed drive onto the paper's
    24-hour fallback window (formula 5); the personalised variant
    derives per-drive windows from a CT (formula 6).  Each mode is swept
    over the same detection thresholds; the row reports the best
    operating point with FAR <= ``max_far`` and the detail carries the
    partial ROC area, the curve-level comparison Section III-B implies.
    """
    from repro.detection.metrics import partial_auc

    split = _w_split(scale)
    rows = []
    for label, mode, extra in (
        ("personalized windows", "personalized", "formula (6)"),
        ("global 24h window", "global", "formula (5)"),
    ):
        model = HealthDegreePredictor(RTConfig(window_mode=mode)).fit(split)
        points = model.roc(split, WINDOW_MODE_THRESHOLDS, n_voters=n_voters)
        affordable = [p for p in points if p.far <= max_far] or points
        best = max(affordable, key=lambda p: (p.fdr, -p.far))
        result = model.evaluate(
            split, threshold=best.parameter, n_voters=n_voters
        )
        area = partial_auc(points, max_far)
        detail = f"{extra}; pAUC@{max_far:g}={area:.4f}"
        if mode == "personalized":
            windows = sorted(model.windows_.values())
            detail += f"; median window {windows[len(windows) // 2]:.0f}h"
        rows.append(AblationRow(label=label, result=result, detail=detail))
    return rows


def compare_health_regressors(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_voters: int = 11,
    thresholds: Sequence[float] = (-0.5, -0.3, -0.2, -0.1, -0.02, 0.0),
) -> list[AblationRow]:
    """Single RT vs bagged-RT health models (the paper's future work).

    "It is worthwhile to study other methods to build more effective
    health degree models" — bagging is the first candidate.  Each row
    reports the best operating point with FAR <= 1% over a shared
    threshold sweep.
    """
    from repro.tree.forest_regression import RandomForestRegressor

    split = _w_split(scale)
    contenders = [
        ("single RT (paper)", RTConfig()),
        (
            "bagged RT x15",
            RTConfig(
                regressor_factory=lambda: RandomForestRegressor(n_trees=15, seed=2)
            ),
        ),
    ]
    rows = []
    for label, config in contenders:
        model = HealthDegreePredictor(config).fit(split)
        points = model.roc(split, thresholds, n_voters=n_voters)
        affordable = [p for p in points if p.far <= 0.01] or points
        best = max(affordable, key=lambda p: (p.fdr, -p.far))
        rows.append(
            AblationRow(
                label=label,
                result=model.evaluate(
                    split, threshold=best.parameter, n_voters=n_voters
                ),
                detail=f"best threshold {best.parameter:g}",
            )
        )
    return rows


def compare_missing_data_robustness(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    outage_channels: tuple[str, ...] = ("RUE", "RSC_RAW"),
    n_voters: int = 11,
) -> list[AblationRow]:
    """Surrogate splits vs majority fallback under a sensor outage.

    Trains two CTs (with and without rpart surrogates) on intact data,
    then evaluates on test drives whose top signature channels stop
    reporting — the scenario surrogates exist for.  Rows: intact
    baseline, outage without surrogates, outage with surrogates.
    """
    import numpy as np

    from repro.smart.attributes import channel_index
    from repro.smart.dataset import TrainTestSplit
    from repro.smart.drive import DriveRecord

    split = _w_split(scale)

    def black_out(drive: DriveRecord) -> DriveRecord:
        values = drive.values.copy()
        for short in outage_channels:
            values[:, channel_index(short)] = np.nan
        return DriveRecord(
            serial=drive.serial, family=drive.family, failed=drive.failed,
            hours=drive.hours.copy(), values=values,
            failure_hour=drive.failure_hour,
        )

    degraded = TrainTestSplit(
        train_good=split.train_good,
        test_good=tuple(black_out(d) for d in split.test_good),
        train_failed=split.train_failed,
        test_failed=tuple(black_out(d) for d in split.test_failed),
    )

    plain = DriveFailurePredictor(CTConfig(n_surrogates=0)).fit(split)
    with_surrogates = DriveFailurePredictor(CTConfig(n_surrogates=3)).fit(split)
    outage_label = "+".join(outage_channels)
    return [
        AblationRow(
            label="intact data (no surrogates)",
            result=plain.evaluate(split, n_voters=n_voters),
        ),
        AblationRow(
            label=f"{outage_label} outage, no surrogates",
            result=plain.evaluate(degraded, n_voters=n_voters),
        ),
        AblationRow(
            label=f"{outage_label} outage, 3 surrogates",
            result=with_surrogates.evaluate(degraded, n_voters=n_voters),
        ),
    ]


def compare_model_zoo(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_voters: int = 11,
) -> list[AblationRow]:
    """CT vs the ensemble extensions under the identical protocol."""
    split = _w_split(scale)
    ct_config = CTConfig()
    contenders: list[tuple[str, Callable[[], object]]] = [
        (
            "random forest (30 trees)",
            lambda: RandomForestClassifier(
                n_trees=30, minsplit=20, minbucket=7, cp=0.004,
                loss_matrix=[[0.0, 1.0], [10.0, 0.0]], seed=3,
            ),
        ),
        (
            "adaboost (15 stumps)",
            lambda: AdaBoostClassifier(n_rounds=15, max_depth=2),
        ),
    ]
    ct = DriveFailurePredictor(ct_config).fit(split)
    rows = [
        AblationRow(label="CT (paper)", result=ct.evaluate(split, n_voters=n_voters))
    ]
    for label, factory in contenders:
        predictor = GenericFailurePredictor(
            factory, sampling=ct_config.sampling, failed_share=ct_config.failed_share
        ).fit(split)
        rows.append(
            AblationRow(label=label, result=predictor.evaluate(split, n_voters=n_voters))
        )
    return rows


@dataclass(frozen=True)
class AdaptiveComparison:
    """Adaptive (drift-triggered) vs calendar updating."""

    adaptive: AdaptiveReport
    calendar: tuple[UpdatingReport, ...]


def compare_adaptive_updating(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    n_weeks: int = 8,
    n_voters: int = 11,
) -> AdaptiveComparison:
    """Drift-triggered retraining vs fixed and 1-week replacing."""
    fleet = paper_family(aging_fleet(scale), "W")
    factory = lambda: DriveFailurePredictor(CTConfig())
    calendar = simulate_updating(
        fleet, factory, [FixedStrategy(), ReplacingStrategy(1)],
        n_weeks=n_weeks, n_voters=n_voters, split_seed=scale.split_seed,
    )
    # ~1,800 good samples per drift check make the rank-sum statistic
    # very sensitive; a high threshold spends retrains only on material
    # drift while matching weekly replacing's false-alarm profile.
    adaptive = simulate_adaptive_updating(
        fleet,
        factory,
        lambda: DriftDetector(critical_features(), z_threshold=20.0),
        n_weeks=n_weeks,
        n_voters=n_voters,
        split_seed=scale.split_seed,
    )
    return AdaptiveComparison(adaptive=adaptive, calendar=tuple(calendar))


def render_ablation_rows(title: str, rows: list[AblationRow]) -> str:
    """Rows as a paper-style metrics table."""
    table = AsciiTable(
        ["Configuration", "FAR (%)", "FDR (%)", "TIA (hours)", "Notes"], title=title
    )
    for row in rows:
        metrics = row.result.as_percentages()
        table.add_row(
            [row.label, metrics["FAR (%)"], metrics["FDR (%)"],
             metrics["TIA (hours)"], row.detail]
        )
    return table.render()


def render_adaptive_comparison(comparison: AdaptiveComparison) -> str:
    """Weekly FAR of adaptive vs calendar strategies, plus retrain counts."""
    weeks = [week for week, _ in comparison.adaptive.far_percent_by_week()]
    table = AsciiTable(
        ["Strategy"] + [f"wk{w}" for w in weeks] + ["retrains"],
        title="Ablation: drift-triggered vs calendar updating (FAR %)",
    )
    for report in comparison.calendar:
        fars = [far for _, far in report.far_percent_by_week()]
        retrains = {"fixed": 0, "1-week replacing": len(weeks) - 1}.get(
            report.strategy, len(weeks) - 1
        )
        table.add_row([report.strategy] + fars + [retrains])
    adaptive_fars = [far for _, far in comparison.adaptive.far_percent_by_week()]
    table.add_row(
        ["drift-adaptive"] + adaptive_fars + [comparison.adaptive.n_retrains]
    )
    return table.render()
