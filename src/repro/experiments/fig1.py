"""Figure 1: a simplified classification tree for drive failure prediction.

Section III-A's illustrative figure: a small tree over SMART attributes
whose nodes carry class-probability distributions and sample shares, and
whose failed leaves read as causal stories ("Power On Hours < 90 ->
failed").  We reproduce it by fitting a depth-limited CT on family "W"
and rendering it in the figure's format, plus the extracted failed-leaf
rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CTConfig
from repro.core.predictor import DriveFailurePredictor
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.tree.export import Rule, extract_rules


@dataclass(frozen=True)
class Fig1Tree:
    """The rendered simplified tree plus its failed-leaf rules."""

    text: str
    failed_rules: tuple[Rule, ...]
    n_leaves: int
    depth: int


def run_fig1(
    scale: ExperimentScale = DEFAULT_SCALE, *, max_depth: int = 4
) -> Fig1Tree:
    """Fit a depth-limited CT on family "W" and render it Figure-1 style."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    config = CTConfig(max_depth=max_depth)
    predictor = DriveFailurePredictor(config).fit(split)
    failed_rules = extract_rules(
        predictor.tree_, predictor.extractor.names, target_class=-1
    )
    return Fig1Tree(
        text=predictor.explain(),
        failed_rules=tuple(failed_rules),
        n_leaves=predictor.tree_.n_leaves_,
        depth=predictor.tree_.depth_,
    )


def render_fig1(tree: Fig1Tree) -> str:
    """The tree diagram followed by its failure rules."""
    lines = [
        "Figure 1: a simplified classification tree for hard drive "
        f"failure prediction ({tree.n_leaves} leaves, depth {tree.depth})",
        tree.text,
        "",
        "Failed-leaf rules (the interpretability payoff):",
    ]
    lines.extend(f"  {rule}" for rule in tree.failed_rules)
    return "\n".join(lines)
