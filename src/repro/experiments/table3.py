"""Table III: effectiveness of the three feature sets.

Both models are trained with a 12-hour failed time window (the paper
fixes this for the feature comparison) on family "W", once per feature
set (basic-12, expert-19, critical-13), and judged drive-level with the
plain any-failed-sample rule (1 voter).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import AnnConfig, CTConfig, SamplingConfig
from repro.core.predictor import AnnFailurePredictor, DriveFailurePredictor
from repro.detection.metrics import DetectionResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, main_fleet, paper_family
from repro.utils.tables import AsciiTable

FEATURE_SET_ORDER = ("basic-12", "expert-19", "critical-13")


@dataclass(frozen=True)
class Table3Row:
    """One row of Table III."""

    model: str
    feature_set: str
    result: DetectionResult


def run_table3(scale: ExperimentScale = DEFAULT_SCALE) -> list[Table3Row]:
    """Fit {BP ANN, CT} x {12, 19, 13 features} and collect FAR/FDR/TIA."""
    split = paper_family(main_fleet(scale), "W").split(seed=scale.split_seed)
    sampling = SamplingConfig(failed_window_hours=12.0)
    rows = []
    for feature_set in FEATURE_SET_ORDER:
        ann = AnnFailurePredictor(
            AnnConfig(features=feature_set, sampling=sampling)
        ).fit(split)
        rows.append(Table3Row("BP ANN", feature_set, ann.evaluate(split, n_voters=1)))
    for feature_set in FEATURE_SET_ORDER:
        ct = DriveFailurePredictor(
            CTConfig(features=feature_set, sampling=sampling)
        ).fit(split)
        rows.append(Table3Row("CT", feature_set, ct.evaluate(split, n_voters=1)))
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    """Table III in the paper's layout."""
    table = AsciiTable(
        ["Model", "Dataset", "FAR (%)", "FDR (%)", "TIA (hours)"],
        title="Table III: effectiveness of three different feature sets",
    )
    for row in rows:
        metrics = row.result.as_percentages()
        table.add_row(
            [row.model, row.feature_set, metrics["FAR (%)"],
             metrics["FDR (%)"], metrics["TIA (hours)"]]
        )
    return table.render()
