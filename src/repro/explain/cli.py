"""``repro-explain``: fleet-scale model explanation and what-if tooling.

Three subcommands, one per pillar of :mod:`repro.explain`:

* ``repro-explain report LOG... [--top N]`` — fold the alert
  provenance of one or more ``repro.events/v1`` logs (a sharded
  fleet's per-shard logs merge deterministically) into a
  ``repro.explain-report/v1`` top-failing-subtrees document.  Default
  output is canonical JSON — byte-stable, suitable for diffing two
  runs; ``--human`` renders it for reading.
* ``repro-explain simulate --dataset HANDLE --feature NAME`` —
  crossfit one tree per CV split on the dataset's training matrix,
  then sweep the named feature (``--shift``/``--value``/quantile grid)
  and print the predicted failure rate with cross-split uncertainty
  bands (``repro.explain-uplift/v1``).
* ``repro-explain redundancy --dataset HANDLE`` — importance spread,
  path-interaction and substitution scores across the split models
  (``repro.explain-redundancy/v1``).

``--dataset`` takes a registry handle
(:mod:`repro.smart.registry`), e.g. ``fleet-synth:?seed=7`` or
``backblaze:tests/fixtures/backblaze_mini``; the training matrix is
built with the paper's protocol (time split for good drives, random
for failed, then windowed feature extraction), so the simulated fleet
is exactly what the CT model trains on.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from typing import Optional

from repro.explain.crossfit import crossfit_models
from repro.explain.redundancy import render_redundancy, summarize_redundancy
from repro.explain.report import (
    canonical_json,
    explain_report_from_logs,
    render_explain_report,
)
from repro.explain.simulate import render_uplift, simulate_uplift


def _print_document(document: dict, args: argparse.Namespace, renderer) -> None:
    if getattr(args, "human", False):
        for line in renderer(document):
            print(line)
    else:
        print(canonical_json(document))
    out = getattr(args, "out", None)
    if out is not None:
        with open(out, "w") as handle:
            handle.write(canonical_json(document) + "\n")


def _cmd_report(args: argparse.Namespace) -> int:
    document = explain_report_from_logs(
        args.logs, top=args.top, tolerant=args.tolerant
    )
    _print_document(document, args, render_explain_report)
    return 0


def _training_matrix(args: argparse.Namespace):
    """(X, y, weights, feature_names, tree_factory) for a dataset handle."""
    from repro.core.config import CTConfig, resolve_features
    from repro.core.sampling import build_training_set
    from repro.features.vectorize import FeatureExtractor
    from repro.smart.registry import resolve
    from repro.tree.classification import ClassificationTree

    config = CTConfig(minsplit=args.minsplit, minbucket=args.minbucket)
    dataset = resolve(args.dataset)
    split = dataset.split(seed=args.split_seed)
    extractor = FeatureExtractor(resolve_features(config.features))
    training = build_training_set(
        extractor,
        split.train_good,
        split.train_failed,
        config.sampling,
        failed_share=config.failed_share,
    )
    loss = [[0.0, 1.0], [config.false_alarm_loss_weight, 0.0]]
    factory = partial(
        ClassificationTree,
        minsplit=config.minsplit,
        minbucket=config.minbucket,
        cp=config.cp,
        criterion=config.criterion,
        loss_matrix=loss,
        max_depth=config.max_depth,
        n_surrogates=config.n_surrogates,
    )
    return (
        training.X,
        training.y,
        training.sample_weight,
        training.feature_names,
        factory,
    )


def _feature_index(name: str, feature_names) -> int:
    if name in feature_names:
        return list(feature_names).index(name)
    try:
        index = int(name)
    except ValueError:
        raise ValueError(
            f"unknown feature {name!r}; known: {', '.join(feature_names)}"
        ) from None
    if not 0 <= index < len(feature_names):
        raise ValueError(
            f"feature index {index} out of range "
            f"(0..{len(feature_names) - 1})"
        )
    return index


def _cmd_simulate(args: argparse.Namespace) -> int:
    X, y, weights, feature_names, factory = _training_matrix(args)
    crossfit = crossfit_models(
        factory, X, y,
        n_folds=args.folds, sample_weight=weights,
        seed=args.seed, n_jobs=args.jobs,
    )
    feature = _feature_index(args.feature, feature_names)
    document = simulate_uplift(
        crossfit, X, feature,
        values=args.value if args.value else None,
        shifts=args.shift if args.shift else None,
        grid_points=args.grid,
        feature_names=feature_names,
        n_jobs=args.jobs,
    )
    _print_document(document, args, render_uplift)
    return 0


def _cmd_redundancy(args: argparse.Namespace) -> int:
    X, y, weights, feature_names, factory = _training_matrix(args)
    crossfit = crossfit_models(
        factory, X, y,
        n_folds=args.folds, sample_weight=weights,
        seed=args.seed, n_jobs=args.jobs,
    )
    document = summarize_redundancy(
        crossfit, X, feature_names=feature_names, top=args.top
    )
    _print_document(document, args, render_redundancy)
    return 0


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--human", action="store_true",
        help="render for reading instead of canonical JSON",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the canonical JSON document to FILE",
    )


def _add_crossfit_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", required=True, metavar="HANDLE",
        help="dataset registry handle, e.g. "
        "backblaze:tests/fixtures/backblaze_mini",
    )
    parser.add_argument(
        "--folds", type=int, default=3, metavar="K",
        help="CV splits to crossfit (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fold-assignment seed (default: 0)",
    )
    parser.add_argument(
        "--split-seed", type=int, default=1, metavar="S",
        help="train/test split seed (default: 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for fits and sweeps "
        "(default: REPRO_N_JOBS; results identical at any setting)",
    )
    parser.add_argument(
        "--minsplit", type=int, default=4,
        help="CT minsplit (default: 4 — sized for small fixtures; "
        "the paper uses 20)",
    )
    parser.add_argument(
        "--minbucket", type=int, default=2,
        help="CT minbucket (default: 2 — sized for small fixtures; "
        "the paper uses 7)",
    )


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (console script ``repro-explain``)."""
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description=(
            "Fleet-scale explanation and what-if simulation: fold alert "
            "provenance into top-failing-subtree reports, sweep features "
            "with crossfit uncertainty bands, summarise redundancy."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="fold alert decision paths into a top-failing-subtrees report",
    )
    report.add_argument(
        "logs", nargs="+", metavar="log",
        help="events JSONL file(s); several are merged into one stream "
        "ordered by fleet hour, then argument position",
    )
    report.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="keep only the N most-alerting nodes per model generation",
    )
    report.add_argument(
        "--tolerant", action="store_true",
        help="forgive a torn final line per log (post-crash read)",
    )
    _add_output_flags(report)
    report.set_defaults(func=_cmd_report)

    simulate = sub.add_parser(
        "simulate",
        help="univariate feature-uplift what-if with crossfit bands",
    )
    _add_crossfit_flags(simulate)
    simulate.add_argument(
        "--feature", required=True,
        help="feature name (e.g. TC) or index to sweep",
    )
    simulate.add_argument(
        "--shift", type=float, nargs="+", default=None, metavar="D",
        help="relative sweep: add each D to every drive's observed value",
    )
    simulate.add_argument(
        "--value", type=float, nargs="+", default=None, metavar="V",
        help="absolute sweep: set the feature to each V fleet-wide",
    )
    simulate.add_argument(
        "--grid", type=int, default=11, metavar="N",
        help="quantile grid size when no --shift/--value given "
        "(default: 11)",
    )
    _add_output_flags(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    redundancy = sub.add_parser(
        "redundancy",
        help="feature importance spread, interaction and substitution "
        "across CV-split models",
    )
    _add_crossfit_flags(redundancy)
    redundancy.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="keep only the top N features and pairs",
    )
    _add_output_flags(redundancy)
    redundancy.set_defaults(func=_cmd_redundancy)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
