"""Facet-style crossfit: one fitted model per cross-validation split.

The facet pattern (BCG-Gamma, see PAPERS.md) separates *scoring* CV —
fit a fold, keep only its score — from *inspection* CV: fit one model
per stratified fold and keep **all of them**, then ask every what-if
question of the whole ensemble.  The spread across split models is a
cheap, deterministic uncertainty band: if a simulated intervention
moves the predicted failure rate the same way under every split model,
the effect is a property of the data, not of one lucky fold.

Reuses the existing machinery end to end: folds come from
:func:`repro.tree.validation.stratified_kfold_indices` (the same
stratification CV scoring uses), fits fan out through
:func:`repro.utils.parallel.run_tasks` (results in submission order, so
``n_jobs`` never changes the models — serial and parallel crossfits are
interchangeable bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.tree.validation import stratified_kfold_indices
from repro.utils.parallel import run_tasks
from repro.utils.validation import check_2d, check_matching_length


@dataclass(frozen=True)
class Crossfit:
    """The per-split fitted models plus the folds that produced them."""

    models: tuple[object, ...]
    folds: tuple[tuple[np.ndarray, np.ndarray], ...]
    seed: int

    @property
    def n_models(self) -> int:
        """Number of split models (== number of usable folds)."""
        return len(self.models)


def _fit_split(context, task):
    """Fit one split model (module-level for worker processes)."""
    model_factory, matrix, labels, weights = context
    train_idx, _ = task
    model = model_factory()
    if weights is None:
        model.fit(matrix[train_idx], labels[train_idx])
    else:
        model.fit(
            matrix[train_idx], labels[train_idx],
            sample_weight=weights[train_idx],
        )
    return model


def crossfit_models(
    model_factory: Callable[[], object],
    X: object,
    y: Sequence[object],
    *,
    n_folds: int = 5,
    sample_weight: Optional[Sequence[float]] = None,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> Crossfit:
    """Fit one model per stratified CV split and keep them all.

    ``model_factory`` must build a fresh unfitted model per call — use
    ``functools.partial`` (not a lambda) to keep the fold fan-out
    available to worker pools; an unpicklable factory silently falls
    back to the serial loop with identical results.
    """
    registry = get_registry()
    tracer = get_tracer()
    matrix = check_2d("X", X)
    labels = np.asarray(y)
    check_matching_length(("X", matrix), ("y", labels))
    weights = (
        None if sample_weight is None
        else np.asarray(sample_weight, dtype=float)
    )
    folds = tuple(stratified_kfold_indices(labels, n_folds, seed))
    if not folds:
        raise ValueError("crossfit produced no usable folds")
    with tracer.span(
        "explain.crossfit", category="explain",
        n_folds=len(folds), n_rows=int(matrix.shape[0]),
    ):
        models = run_tasks(
            _fit_split,
            list(folds),
            n_jobs=n_jobs,
            context=(model_factory, matrix, labels, weights),
        )
    registry.counter(
        "explain.crossfit_fits", help="split models fitted by crossfits"
    ).inc(len(models))
    return Crossfit(models=tuple(models), folds=folds, seed=int(seed))
