"""Fleet-level "top failing subtrees" reports folded from alert provenance.

Every ``alert_raised`` event already carries the CART decision path that
classified the triggering sample (PR 5 provenance).  One alert at a time
that is an explanation; across a fleet's event logs it is a *model
observability* signal: which subtrees of the serving model do the
paging, how much of the alert volume each one carries, and — once
operators feed ground truth back through ``resolve_outcome`` — how
precise each subtree's pages turned out to be.

:func:`build_explain_report` folds a ``repro.events/v1`` stream into a
schema-tagged ``repro.explain-report/v1`` document:

* alerts are grouped by ``model_generation`` (a fleet that rolled a
  model mid-run gets one section per generation — node ids are only
  comparable within one fitted tree);
* every step of every decision path is attributed to its tree node.
  Node ids follow the heap convention (root = 1, children of ``i`` are
  ``2i`` and ``2i+1``), so the id of each internal step is derived from
  the ``went_left`` chain even for logs written before steps carried an
  explicit ``node_id``; the leaf uses its recorded id;
* per node the report keeps the *training* statistics recorded in the
  provenance (support, impurity, prediction) plus the *serving*
  tallies: alert count, share of the generation's explained alerts,
  and the outcome split of those alerts;
* precision is computed only over **resolved** alerts — an alert whose
  drive never saw ``resolve_outcome`` counts as ``unresolved`` and is
  excluded from the precision denominator, so unlabelled traffic can
  never dilute (or inflate) a subtree's measured precision.

The outcome join prefers the ``alert_id`` that ``outcome_resolved``
events carry; for older logs without it, the last outcome resolved for
the alert's drive serial is used instead.

Everything here replays from logs alone — no live monitor, no model
object.  The report built from a run's log is bit-identical to the one
built from the live in-memory event stream, and
:func:`canonical_json` gives the byte-stable serialisation the tests
pin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.observability.events import Event, merge_event_streams
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer

#: Schema tag on every explain-report document (bump on breaking change).
EXPLAIN_REPORT_SCHEMA = "repro.explain-report/v1"


def canonical_json(document: dict) -> str:
    """The byte-stable serialisation of a report document.

    Sorted keys, no whitespace: two equal documents serialise to equal
    bytes, which is what the bit-identical acceptance tests compare.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _derived_step_ids(steps: Sequence[dict]) -> list[int]:
    """Heap node ids for a serialised decision path, root first.

    Internal ids are derived from the ``went_left`` chain (root = 1,
    left child ``2i``, right child ``2i+1``); a recorded ``node_id``
    (present on the leaf always, on internal steps for newer logs)
    takes precedence — the two agree by construction.
    """
    ids: list[int] = []
    node_id = 1
    for step in steps:
        node_id = int(step.get("node_id", node_id))
        ids.append(node_id)
        if not step.get("leaf"):
            node_id = 2 * node_id + (0 if step["went_left"] else 1)
    return ids


def _outcome_index(events: Iterable[Event]) -> tuple[dict, dict]:
    """Join keys for ``outcome_resolved`` events.

    Returns ``(by_alert_id, by_drive)``: the exact join on the optional
    ``alert_id`` payload key, and the per-serial fallback (last outcome
    wins) for logs written before outcomes carried the id.
    """
    by_alert_id: dict[str, str] = {}
    by_drive: dict[str, str] = {}
    for event in events:
        if event.type != "outcome_resolved":
            continue
        outcome = str(event.data.get("outcome", ""))
        alert_id = event.data.get("alert_id")
        if alert_id is not None:
            by_alert_id[str(alert_id)] = outcome
        if event.drive is not None:
            by_drive[event.drive] = outcome
    return by_alert_id, by_drive


def build_explain_report(
    events: Sequence[Event], *, top: Optional[int] = None
) -> dict:
    """Fold an event stream into a top-failing-subtrees report.

    Args:
        events: Any ordered ``repro.events/v1`` stream — a live log's
            buffer, :func:`~repro.observability.events.read_events`
            output, or a multi-log
            :func:`~repro.observability.events.merge_event_streams`
            merge.
        top: Keep only the ``top`` most-alerting nodes per model
            generation (``None`` keeps every touched node).

    Returns:
        A JSON-able ``repro.explain-report/v1`` document; serialise it
        with :func:`canonical_json` for byte-stable output.
    """
    registry = get_registry()
    tracer = get_tracer()
    events = list(events)
    alerts = [event for event in events if event.type == "alert_raised"]
    with tracer.span(
        "explain.report", category="explain",
        n_events=len(events), n_alerts=len(alerts),
    ):
        by_alert_id, by_drive = _outcome_index(events)

        # generation -> node_id -> aggregate entry
        generations: dict[int, dict[int, dict]] = {}
        gen_alerts: dict[int, int] = {}
        gen_with_path: dict[int, int] = {}
        alerts_with_path = alerts_resolved = 0

        for event in alerts:
            generation = int(event.data.get("model_generation", 0))
            gen_alerts[generation] = gen_alerts.get(generation, 0) + 1
            outcome = by_alert_id.get(str(event.data.get("alert_id")))
            if outcome is None and event.drive is not None:
                outcome = by_drive.get(event.drive)
            if outcome is None:
                outcome = "unresolved"
            else:
                alerts_resolved += 1
            steps = event.data.get("path")
            if not steps:
                continue
            alerts_with_path += 1
            gen_with_path[generation] = gen_with_path.get(generation, 0) + 1
            nodes = generations.setdefault(generation, {})
            for depth, (node_id, step) in enumerate(
                zip(_derived_step_ids(steps), steps)
            ):
                entry = nodes.get(node_id)
                if entry is None:
                    entry = {
                        "node_id": node_id,
                        "depth": depth,
                        "leaf": bool(step.get("leaf", False)),
                        "feature": (
                            None if step.get("leaf")
                            else int(step["feature"])
                        ),
                        "threshold": (
                            None if step.get("leaf")
                            else float(step["threshold"])
                        ),
                        "support": int(step["n_samples"]),
                        "impurity": float(step["impurity"]),
                        "prediction": float(step["prediction"]),
                        "alerts": 0,
                        "outcomes": {},
                    }
                    if "name" in step:
                        entry["name"] = str(step["name"])
                    nodes[node_id] = entry
                entry["alerts"] += 1
                outcomes = entry["outcomes"]
                outcomes[outcome] = outcomes.get(outcome, 0) + 1

        document: dict = {
            "schema": EXPLAIN_REPORT_SCHEMA,
            "alerts_total": len(alerts),
            "alerts_with_path": alerts_with_path,
            "alerts_resolved": alerts_resolved,
            "alerts_unresolved": len(alerts) - alerts_resolved,
            "generations": [],
        }
        for generation in sorted(generations):
            nodes = generations[generation]
            explained = gen_with_path.get(generation, 0)
            entries = sorted(
                nodes.values(),
                key=lambda entry: (-entry["alerts"], entry["node_id"]),
            )
            if top is not None:
                entries = entries[:top]
            for entry in entries:
                entry["alert_share"] = (
                    entry["alerts"] / explained if explained else 0.0
                )
                detected = entry["outcomes"].get("detected", 0)
                false_alarm = entry["outcomes"].get("false_alarm", 0)
                resolved = detected + false_alarm
                entry["precision"] = (
                    detected / resolved if resolved else None
                )
            document["generations"].append(
                {
                    "model_generation": generation,
                    "alerts": gen_alerts.get(generation, 0),
                    "alerts_with_path": explained,
                    "nodes": entries,
                }
            )
        registry.counter(
            "explain.reports", help="explain reports built"
        ).inc()
        registry.counter(
            "explain.paths_folded",
            help="alert decision paths folded into explain reports",
        ).inc(alerts_with_path)
        return document


def explain_report_from_logs(
    paths: Sequence[Union[str, Path]],
    *,
    top: Optional[int] = None,
    tolerant: bool = False,
) -> dict:
    """Build an explain report straight from one or more event logs.

    Multiple logs (a sharded fleet's per-shard logs) are merged with
    :func:`~repro.observability.events.merge_event_streams` — the same
    deterministic order ``repro-events`` uses — before folding.
    ``tolerant=True`` forgives a torn final line per log (the post-crash
    read), so a report survives a writer killed mid-append.
    """
    events = merge_event_streams(paths, tolerant=tolerant)
    return build_explain_report(events, top=top)


def render_explain_report(document: dict) -> list[str]:
    """Human-readable lines for a report (``repro-explain report --human``)."""
    lines = [
        f"Explain report [{document['schema']}]: "
        f"{document['alerts_total']} alert(s), "
        f"{document['alerts_with_path']} with provenance, "
        f"{document['alerts_resolved']} resolved / "
        f"{document['alerts_unresolved']} unresolved",
    ]
    for section in document["generations"]:
        lines.append(
            f"model generation {section['model_generation']}: "
            f"{section['alerts']} alert(s), "
            f"{section['alerts_with_path']} explained"
        )
        for entry in section["nodes"]:
            if entry["leaf"]:
                condition = f"leaf predict {entry['prediction']:g}"
            else:
                name = entry.get("name", f"x[{entry['feature']}]")
                condition = f"split {name} < {entry['threshold']:g}"
            precision = (
                f"{entry['precision']:.0%}"
                if entry["precision"] is not None else "n/a"
            )
            lines.append(
                f"  node {entry['node_id']} (depth {entry['depth']}): "
                f"{condition} — {entry['alerts']} alert(s), "
                f"{entry['alert_share']:.0%} share, "
                f"precision {precision} "
                f"(support n={entry['support']})"
            )
    return lines
