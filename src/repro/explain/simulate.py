"""Univariate feature-uplift simulation: what-if questions for the fleet.

The operator question is counterfactual: *"if fleet temperature dropped
2°C, how would the predicted failure rate change?"*.  Following the
facet simulation pattern (PAPERS.md), the answer is computed by brute
force and is exactly as trustworthy as the model it interrogates:

* take a :class:`~repro.explain.crossfit.Crossfit` — one fitted tree
  per CV split;
* sweep **one** feature over a partition grid (absolute values, or
  shifts relative to each drive's observed value — the temperature
  question above is ``shifts=[-2.0]``);
* at every grid point, rewrite that one column of the feature matrix
  and rescore *every* row through each split model's batched compiled
  scorer;
* report the mean predicted failure rate per point with an uncertainty
  band from the spread across split models.

Grid points are independent, so they fan out through
:func:`repro.utils.parallel.run_tasks` — results come back in
submission order and each point's arithmetic is fixed up front, so the
simulation is bit-identical at any ``n_jobs`` (the acceptance tests pin
serial vs ``n_jobs=4``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import FAILED_LABEL
from repro.explain.crossfit import Crossfit
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.utils.parallel import run_tasks
from repro.utils.validation import check_2d

#: Schema tag on every uplift-simulation document.
UPLIFT_SCHEMA = "repro.explain-uplift/v1"


def partition_grid(column: Sequence[float], n_points: int = 11) -> list[float]:
    """A deterministic value grid over one feature's observed range.

    Evenly spaced quantiles of the column's finite values, deduplicated
    (a near-constant column yields fewer points).  Mirrors facet's
    continuous partitioner: the grid covers where the fleet actually
    lives, not a theoretical range.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    values = np.asarray(column, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("column has no finite values to build a grid from")
    quantiles = np.linspace(0.0, 1.0, n_points)
    grid = np.quantile(finite, quantiles)
    deduplicated: list[float] = []
    for point in grid.tolist():
        if not deduplicated or point != deduplicated[-1]:
            deduplicated.append(float(point))
    return deduplicated


def _failure_rates(context, task):
    """Failure rate per split model at one grid point (module-level)."""
    models, matrix, feature, mode, failed_label = context
    _, amount = task
    modified = matrix.copy()
    if mode == "shift":
        modified[:, feature] = modified[:, feature] + amount
    else:
        modified[:, feature] = amount
    return [
        float(np.mean(model.predict(modified) == failed_label))
        for model in models
    ]


def simulate_uplift(
    crossfit: Crossfit,
    X: object,
    feature: int,
    *,
    values: Optional[Sequence[float]] = None,
    shifts: Optional[Sequence[float]] = None,
    grid_points: int = 11,
    failed_label: float = FAILED_LABEL,
    feature_names: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
) -> dict:
    """Sweep one feature and rescore the fleet at every grid point.

    Exactly one sweep mode applies: explicit absolute ``values``,
    relative ``shifts`` (added to each row's observed value), or —
    when neither is given — an automatic :func:`partition_grid` of
    ``grid_points`` quantiles in value mode.

    Returns a JSON-able ``repro.explain-uplift/v1`` document: the
    baseline failure rate (unmodified matrix) and, per grid point, the
    per-model rates, their mean/std, and the uplift of the mean over
    baseline.  Deterministic at any ``n_jobs``.
    """
    registry = get_registry()
    tracer = get_tracer()
    matrix = check_2d("X", X)
    feature = int(feature)
    if not 0 <= feature < matrix.shape[1]:
        raise ValueError(
            f"feature {feature} out of range for {matrix.shape[1]} columns"
        )
    if values is not None and shifts is not None:
        raise ValueError("pass values= or shifts=, not both")
    if shifts is not None:
        mode, amounts = "shift", [float(s) for s in shifts]
    elif values is not None:
        mode, amounts = "value", [float(v) for v in values]
    else:
        mode, amounts = "value", partition_grid(
            matrix[:, feature], grid_points
        )
    if not amounts:
        raise ValueError("the sweep grid is empty")

    with tracer.span(
        "explain.simulate", category="explain",
        feature=feature, n_points=len(amounts), n_models=crossfit.n_models,
    ):
        context = (crossfit.models, matrix, feature, mode, float(failed_label))
        baseline_rates = [
            float(np.mean(model.predict(matrix) == float(failed_label)))
            for model in crossfit.models
        ]
        per_point = run_tasks(
            _failure_rates,
            list(enumerate(amounts)),
            n_jobs=n_jobs,
            context=context,
        )

    baseline_mean = float(np.mean(baseline_rates))
    points = []
    for amount, rates in zip(amounts, per_point):
        mean = float(np.mean(rates))
        points.append(
            {
                ("shift" if mode == "shift" else "value"): amount,
                "rates": rates,
                "mean": mean,
                "std": float(np.std(rates)),
                "uplift": mean - baseline_mean,
            }
        )
    document: dict = {
        "schema": UPLIFT_SCHEMA,
        "feature": feature,
        "mode": mode,
        "n_models": crossfit.n_models,
        "n_rows": int(matrix.shape[0]),
        "failed_label": float(failed_label),
        "baseline": {
            "rates": baseline_rates,
            "mean": baseline_mean,
            "std": float(np.std(baseline_rates)),
        },
        "points": points,
    }
    if feature_names is not None:
        document["name"] = str(feature_names[feature])
    registry.counter(
        "explain.simulations", help="uplift simulations run"
    ).inc()
    registry.counter(
        "explain.grid_points",
        help="grid points rescored by uplift simulations",
    ).inc(len(amounts))
    return document


def render_uplift(document: dict) -> list[str]:
    """Human-readable lines for an uplift document."""
    name = document.get("name", f"x[{document['feature']}]")
    baseline = document["baseline"]
    lines = [
        f"Uplift simulation [{document['schema']}]: {name} "
        f"({document['mode']} sweep, {document['n_models']} split models, "
        f"{document['n_rows']} rows)",
        f"baseline failure rate: {baseline['mean']:.4f} "
        f"± {baseline['std']:.4f}",
    ]
    key = "shift" if document["mode"] == "shift" else "value"
    for point in document["points"]:
        lines.append(
            f"  {key} {point[key]:g}: rate {point['mean']:.4f} "
            f"± {point['std']:.4f} (uplift {point['uplift']:+.4f})"
        )
    return lines
