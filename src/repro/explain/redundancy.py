"""Feature redundancy / interaction summaries across CV-split models.

The paper's interpretability claim is that the tree names "the
significant attributes inducing failures".  A single fitted tree
overstates that story: CART picks *one* of two nearly interchangeable
features and hides the other entirely.  Looking **across** the split
models of a :class:`~repro.explain.crossfit.Crossfit` (the facet
inspection pattern) recovers what one tree hides:

* **importance spread** — a feature whose gain-weighted importance is
  large in some splits and zero in others is being substituted, not
  ignored;
* **interaction** — the fraction of fleet rows whose root-to-leaf path
  splits on *both* features of a pair (averaged across split models,
  via the batched :meth:`~repro.tree.base.BaseDecisionTree.decision_paths`);
  features that co-occur on serving paths act jointly on the same
  drives;
* **substitution** — an anti-correlation of a pair's importances
  across splits (one takes exactly the gain the other loses) is the
  classic redundancy signature; the summary reports
  ``max(0, -corr)`` as the substitution score.

Everything is computed from fitted models plus a feature matrix — no
live monitor — and is deterministic for a deterministic crossfit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.explain.crossfit import Crossfit
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.utils.validation import check_2d

#: Schema tag on every redundancy-summary document.
REDUNDANCY_SCHEMA = "repro.explain-redundancy/v1"


def _interaction_matrix(model, matrix: np.ndarray, n_features: int) -> np.ndarray:
    """Pairwise path co-occurrence for one model: fraction of rows whose
    decision path splits on both features of the pair."""
    counts = np.zeros((n_features, n_features), dtype=float)
    by_id = {node.node_id: node for node in model.root_.iter_nodes()}
    for chain in model.decision_paths(matrix):
        features = sorted(
            {
                by_id[node_id].feature
                for node_id in chain
                if not by_id[node_id].is_leaf
            }
        )
        for position, i in enumerate(features):
            for j in features[position:]:
                counts[i, j] += 1.0
                if i != j:
                    counts[j, i] += 1.0
    return counts / max(matrix.shape[0], 1)


def summarize_redundancy(
    crossfit: Crossfit,
    X: object,
    *,
    feature_names: Optional[Sequence[str]] = None,
    top: Optional[int] = None,
) -> dict:
    """Fold a crossfit's split models into a redundancy/interaction report.

    Returns a JSON-able ``repro.explain-redundancy/v1`` document:
    per-feature importance mean/std across split models (sorted by
    descending mean importance), and per-pair interaction strength plus
    substitution score (sorted by descending interaction; ``top``
    limits both lists).
    """
    registry = get_registry()
    tracer = get_tracer()
    matrix = check_2d("X", X)
    n_features = int(crossfit.models[0].n_features_)
    with tracer.span(
        "explain.redundancy", category="explain",
        n_models=crossfit.n_models, n_features=n_features,
    ):
        importances = np.stack(
            [model.feature_importances() for model in crossfit.models]
        )
        interactions = np.mean(
            [
                _interaction_matrix(model, matrix, n_features)
                for model in crossfit.models
            ],
            axis=0,
        )

        def name_of(index: int) -> Optional[str]:
            return (
                str(feature_names[index]) if feature_names is not None
                else None
            )

        features = []
        for index in range(n_features):
            entry = {
                "feature": index,
                "importance_mean": float(np.mean(importances[:, index])),
                "importance_std": float(np.std(importances[:, index])),
                "split_share": float(
                    np.mean(importances[:, index] > 0.0)
                ),
            }
            if feature_names is not None:
                entry["name"] = name_of(index)
            features.append(entry)
        features.sort(
            key=lambda entry: (-entry["importance_mean"], entry["feature"])
        )

        pairs = []
        for i in range(n_features):
            for j in range(i + 1, n_features):
                interaction = float(interactions[i, j])
                used_i, used_j = importances[:, i], importances[:, j]
                if (
                    crossfit.n_models > 1
                    and float(np.std(used_i)) > 0.0
                    and float(np.std(used_j)) > 0.0
                ):
                    correlation = float(np.corrcoef(used_i, used_j)[0, 1])
                else:
                    correlation = 0.0
                if interaction == 0.0 and correlation == 0.0:
                    continue
                pair = {
                    "i": i,
                    "j": j,
                    "interaction": interaction,
                    "importance_correlation": correlation,
                    "substitution": max(0.0, -correlation),
                }
                if feature_names is not None:
                    pair["name_i"] = name_of(i)
                    pair["name_j"] = name_of(j)
                pairs.append(pair)
        pairs.sort(
            key=lambda pair: (-pair["interaction"], pair["i"], pair["j"])
        )
        if top is not None:
            features_out = features[:top]
            pairs_out = pairs[:top]
        else:
            features_out, pairs_out = features, pairs

    registry.counter(
        "explain.redundancy_summaries", help="redundancy summaries built"
    ).inc()
    return {
        "schema": REDUNDANCY_SCHEMA,
        "n_models": crossfit.n_models,
        "n_features": n_features,
        "n_rows": int(matrix.shape[0]),
        "features": features_out,
        "pairs": pairs_out,
    }


def render_redundancy(document: dict) -> list[str]:
    """Human-readable lines for a redundancy document."""
    lines = [
        f"Redundancy summary [{document['schema']}]: "
        f"{document['n_models']} split models, "
        f"{document['n_features']} features, {document['n_rows']} rows",
        "feature importances across splits:",
    ]
    for entry in document["features"]:
        name = entry.get("name", f"x[{entry['feature']}]")
        lines.append(
            f"  {name}: {entry['importance_mean']:.3f} "
            f"± {entry['importance_std']:.3f} "
            f"(splits on it in {entry['split_share']:.0%} of models)"
        )
    lines.append("pairwise interaction / substitution:")
    for pair in document["pairs"]:
        name_i = pair.get("name_i", f"x[{pair['i']}]")
        name_j = pair.get("name_j", f"x[{pair['j']}]")
        lines.append(
            f"  {name_i} × {name_j}: interaction {pair['interaction']:.3f}, "
            f"substitution {pair['substitution']:.3f}"
        )
    return lines
