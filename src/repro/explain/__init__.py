"""Fleet-scale model explanation and what-if simulation.

The observability layer on top of alert provenance.  Every raised
alert already carries its CART decision path
(:func:`repro.observability.events.decision_path_payload`); this
package turns those per-alert breadcrumbs into fleet-level products,
following the interpretable-maintenance framing of arXiv 2102.06509
and the facet simulation/crossfit patterns (PAPERS.md):

* :mod:`repro.explain.report` — fold one or more ``repro.events/v1``
  logs into a **top failing subtrees** report
  (``repro.explain-report/v1``): which tree nodes carry the alert
  volume, with outcome-resolved precision per subtree.  Replayable
  from logs alone;
* :mod:`repro.explain.crossfit` — one fitted model per stratified CV
  split (the facet crossfit pattern), the uncertainty substrate for
  the other pillars;
* :mod:`repro.explain.simulate` — **univariate feature-uplift
  simulation** (``repro.explain-uplift/v1``): sweep one SMART feature
  over a partition grid, rescore the fleet through the batched
  compiled scorer per split model, report mean ± spread;
* :mod:`repro.explain.redundancy` — **feature redundancy /
  interaction** summaries across split models
  (``repro.explain-redundancy/v1``).

Surface: the ``repro-explain`` CLI (:mod:`repro.explain.cli`) with
``report`` / ``simulate`` / ``redundancy`` subcommands; the
``explain.*`` metrics and spans are declared in
:mod:`repro.observability.catalog` and documented in
``docs/observability.md``; the operator walkthrough is
``docs/explanation.md``.
"""

from repro.explain.crossfit import Crossfit, crossfit_models
from repro.explain.redundancy import (
    REDUNDANCY_SCHEMA,
    render_redundancy,
    summarize_redundancy,
)
from repro.explain.report import (
    EXPLAIN_REPORT_SCHEMA,
    build_explain_report,
    canonical_json,
    explain_report_from_logs,
    render_explain_report,
)
from repro.explain.simulate import (
    UPLIFT_SCHEMA,
    partition_grid,
    render_uplift,
    simulate_uplift,
)

__all__ = [
    "Crossfit",
    "crossfit_models",
    "REDUNDANCY_SCHEMA",
    "render_redundancy",
    "summarize_redundancy",
    "EXPLAIN_REPORT_SCHEMA",
    "build_explain_report",
    "canonical_json",
    "explain_report_from_logs",
    "render_explain_report",
    "UPLIFT_SCHEMA",
    "partition_grid",
    "render_uplift",
    "simulate_uplift",
]
