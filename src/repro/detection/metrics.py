"""Drive-level prediction metrics: FDR, FAR, TIA and ROC utilities.

The paper's three metrics (Section V-A1):

* **FDR** (failure detection rate) — fraction of failed drives correctly
  flagged before failure;
* **FAR** (false alarm rate) — fraction of good drives incorrectly
  flagged;
* **TIA** (time in advance) — how long before the actual failure the
  first alarm fired, reported as a mean and as the histogram of
  Figures 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: The histogram bin edges of Figures 3 and 4 (hours in advance).
TIA_BINS: tuple[tuple[float, float], ...] = (
    (0.0, 24.0),
    (25.0, 72.0),
    (73.0, 168.0),
    (169.0, 336.0),
    (337.0, 450.0),
)

TIA_BIN_LABELS: tuple[str, ...] = tuple(
    f"{int(lo)}-{int(hi)}" for lo, hi in TIA_BINS
)


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of evaluating a detector over a test fleet.

    ``tia_hours`` holds one lead time per *correctly detected* failed
    drive; missed drives contribute nothing (matching the paper, which
    plots TIA "for correct predictions").
    """

    n_good: int
    n_false_alarms: int
    n_failed: int
    n_detected: int
    tia_hours: tuple[float, ...] = field(default=())

    @property
    def far(self) -> float:
        """False alarm rate over good drives, in [0, 1]."""
        return self.n_false_alarms / self.n_good if self.n_good else 0.0

    @property
    def fdr(self) -> float:
        """Failure detection rate over failed drives, in [0, 1]."""
        return self.n_detected / self.n_failed if self.n_failed else 0.0

    @property
    def mean_tia_hours(self) -> float:
        """Mean time in advance of the correct detections (0.0 if none)."""
        return float(np.mean(self.tia_hours)) if self.tia_hours else 0.0

    def tia_histogram(self) -> list[int]:
        """Detection counts per Figure 3/4 bin (last bin absorbs overflow)."""
        counts = [0] * len(TIA_BINS)
        for tia in self.tia_hours:
            for index, (lo, hi) in enumerate(TIA_BINS):
                if lo <= tia <= hi:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        return counts

    def as_percentages(self) -> dict[str, float]:
        """FAR/FDR as percentages plus mean TIA — the paper's table row."""
        return {
            "FAR (%)": 100.0 * self.far,
            "FDR (%)": 100.0 * self.fdr,
            "TIA (hours)": self.mean_tia_hours,
        }


@dataclass(frozen=True)
class RocPoint:
    """One operating point of a ROC sweep (rates in [0, 1])."""

    parameter: float
    far: float
    fdr: float


def roc_dominates(points_a: Sequence[RocPoint], points_b: Sequence[RocPoint]) -> bool:
    """True when curve A is nowhere below curve B on the FAR axis overlap.

    Compares, for every point of B, the best FDR A achieves at a FAR no
    larger than B's — the paper's sense of "the CT model is superior in
    both FDR and FAR".
    """
    if not points_a or not points_b:
        return False
    a_sorted = sorted(points_a, key=lambda p: p.far)
    for b in points_b:
        achievable = [a.fdr for a in a_sorted if a.far <= b.far + 1e-12]
        if not achievable or max(achievable) + 1e-9 < b.fdr:
            return False
    return True


def partial_auc(points: Sequence[RocPoint], max_far: float = 1.0) -> float:
    """Trapezoidal area under the (FAR, FDR) points up to ``max_far``.

    The curve is anchored at (0, 0) and extended horizontally to
    ``max_far``; a larger value means a uniformly better detector.
    """
    if not points:
        return 0.0
    ordered = sorted(points, key=lambda p: (p.far, p.fdr))
    fars = [0.0] + [min(p.far, max_far) for p in ordered if p.far <= max_far]
    fdrs = [0.0] + [p.fdr for p in ordered if p.far <= max_far]
    if fars[-1] < max_far:
        fars.append(max_far)
        fdrs.append(fdrs[-1])
    return float(np.trapezoid(fdrs, fars))
