"""Operational cost of a prediction operating point.

The paper motivates its false-alarm obsession economically: every alarm
triggers handling work (migration, replacement), so "a high FAR implies
too many false alarms and results in heavy processing cost", while a
missed detection risks rebuild windows and, ultimately, data loss.  This
module makes that trade-off computable: an :class:`OperationalCostModel`
prices alarms, misses and data-loss events, and
:func:`choose_operating_point` picks the ROC point (voter count or RT
threshold) minimising the expected annual cost of a fleet — turning the
paper's qualitative guidance into a procurement-grade decision rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.detection.metrics import RocPoint
from repro.reliability.raid import mttdl_raid6_with_prediction
from repro.reliability.single_drive import PredictionQuality
from repro.utils.validation import check_fraction, check_positive

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class OperationalCostModel:
    """Prices and fleet parameters for costing an operating point.

    Attributes:
        fleet_size: Number of drives monitored.
        mttf_hours: Per-drive mean time to failure.
        mttr_hours: Repair/rebuild mean time.
        alarm_handling_cost: Cost of acting on one alarm (migration +
            replacement labour), true or false.
        missed_failure_cost: Extra cost of an *unpredicted* failure
            (degraded-mode operation, urgent rebuild) beyond the
            handling cost it eventually incurs anyway.
        data_loss_cost: Cost of one data-loss event in a RAID group.
        raid_group_size: Drives per RAID-6 group (0 disables the
            data-loss term, e.g. for replicated systems).
        evaluation_weeks: The horizon over which FAR was measured; FAR
            is a per-drive probability over this window and is
            annualised accordingly.
    """

    fleet_size: int = 10_000
    mttf_hours: float = 1_390_000.0
    mttr_hours: float = 8.0
    alarm_handling_cost: float = 300.0
    missed_failure_cost: float = 1_500.0
    data_loss_cost: float = 1_000_000.0
    raid_group_size: int = 16
    evaluation_weeks: float = 1.0

    def __post_init__(self) -> None:
        check_positive("fleet_size", self.fleet_size)
        check_positive("mttf_hours", self.mttf_hours)
        check_positive("mttr_hours", self.mttr_hours)
        check_positive("evaluation_weeks", self.evaluation_weeks)
        if self.raid_group_size < 0:
            raise ValueError(
                f"raid_group_size must be >= 0, got {self.raid_group_size}"
            )
        for name in ("alarm_handling_cost", "missed_failure_cost", "data_loss_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class CostBreakdown:
    """Expected annual cost of one operating point, itemised."""

    operating_point: RocPoint
    true_alarm_cost: float
    false_alarm_cost: float
    missed_failure_cost: float
    data_loss_cost: float

    @property
    def total(self) -> float:
        """Sum of the four cost components (the quantity minimised)."""
        return (
            self.true_alarm_cost
            + self.false_alarm_cost
            + self.missed_failure_cost
            + self.data_loss_cost
        )


def expected_annual_cost(
    point: RocPoint,
    model: OperationalCostModel,
    *,
    tia_hours: float = 336.0,
) -> CostBreakdown:
    """Expected annual fleet cost at one (FAR, FDR) operating point.

    Cost terms:

    * **true alarms** — annual failures ``fleet / MTTF`` caught at rate
      FDR, each paying the handling cost;
    * **false alarms** — FAR is a per-drive probability over the
      evaluation window, annualised linearly (an upper bound for small
      rates), each paying the same handling cost;
    * **missed failures** — uncaught failures pay the missed-failure
      premium;
    * **data loss** — RAID-6 groups at this prediction quality lose data
      at ``1 / MTTDL``; each event pays the data-loss cost.
    """
    check_fraction("point.far", point.far)
    check_fraction("point.fdr", point.fdr)
    check_positive("tia_hours", tia_hours)

    annual_failures = model.fleet_size * HOURS_PER_YEAR / model.mttf_hours
    caught = annual_failures * point.fdr
    missed = annual_failures * (1.0 - point.fdr)
    false_alarms_per_year = (
        model.fleet_size * point.far * (52.0 / model.evaluation_weeks)
    )

    loss_cost = 0.0
    if model.raid_group_size >= 3 and model.data_loss_cost > 0:
        quality = PredictionQuality(
            fdr=min(max(point.fdr, 0.0), 1.0), tia_hours=tia_hours
        )
        mttdl = mttdl_raid6_with_prediction(
            model.raid_group_size, model.mttf_hours, model.mttr_hours, quality
        )
        n_groups = model.fleet_size / model.raid_group_size
        loss_cost = (
            n_groups * (HOURS_PER_YEAR / mttdl) * model.data_loss_cost
        )

    return CostBreakdown(
        operating_point=point,
        true_alarm_cost=caught * model.alarm_handling_cost,
        false_alarm_cost=false_alarms_per_year * model.alarm_handling_cost,
        missed_failure_cost=missed * model.missed_failure_cost,
        data_loss_cost=loss_cost,
    )


def choose_operating_point(
    points: Sequence[RocPoint],
    model: Optional[OperationalCostModel] = None,
    *,
    tia_hours: float = 336.0,
) -> tuple[CostBreakdown, list[CostBreakdown]]:
    """Cost-minimising point of a ROC sweep.

    Returns ``(best, all_breakdowns)`` with breakdowns in input order;
    ties resolve to the earlier point.
    """
    if not points:
        raise ValueError("points must not be empty")
    model = model or OperationalCostModel()
    breakdowns = [
        expected_annual_cost(point, model, tia_hours=tia_hours) for point in points
    ]
    best = min(breakdowns, key=lambda breakdown: breakdown.total)
    return best, breakdowns
