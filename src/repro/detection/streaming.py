"""Online (streaming) failure monitoring.

The paper's deployment story is a monitoring daemon: every hour each
drive reports a SMART record, the model scores it, and the voting rule
decides whether to raise a warning.  This module provides that streaming
surface with *exactly* the offline semantics:

* :class:`OnlineFeatureBuffer` — per-drive rolling history that computes
  value and change-rate features incrementally (a change rate needs the
  reading from ``interval`` hours ago, so the buffer keeps just enough
  history);
* :class:`OnlineMajorityVote` / :class:`OnlineMeanThreshold` — O(1)
  sliding-window reimplementations of the offline detectors;
* :class:`FleetMonitor` — routes per-drive observations through a fitted
  model and collects :class:`Alert` events.

Equivalence with the offline path (score_drives + first_alarm) is
guaranteed by construction and enforced by the test suite.

**Degraded-mode serving.**  A production feed is dirty: ticks arrive
out of order, repeat, carry the wrong shape or a non-finite timestamp.
The monitor therefore runs every observation through a validation gate
before it touches a drive's feature buffer: malformed ticks are counted
and excluded (never scored, never a voting slot) and recorded as
structured :class:`~repro.utils.errors.SampleFault` events.  A drive
whose fault count passes the :class:`QuarantinePolicy` threshold is
flagged ``DEGRADED`` — its alerts are suppressed and it is reported via
:meth:`FleetMonitor.degraded_drives` instead of being silently
mis-scored on garbage input.  Missing *values* (NaN/inf cells injected
by flaky sensors) are not faults: they flow through unchanged and the
tree's surrogate/``missing_goes_left`` machinery routes them, exactly
as at fit time; voting treats unscorable samples as NaN gaps without
resetting its window.

**Two serving engines.**  ``FleetMonitor(engine="object")`` (the
reference backend) walks one python object per drive per tick — the
path documented above.  ``engine="columnar"`` replaces that hot path
with the structure-of-arrays core in
:mod:`repro.detection.columnar`: one 2-D ``(n_drives, n_channels)``
ingest per tick, mask-based validation, ring-buffer voting matrices
and a single batched model call.  The two engines are bit-identical —
same alerts, same ``health_report()``, same event stream, same
quarantine decisions — mirroring the compiled-vs-node tree backends;
the object engine is the oracle the columnar engine is pinned against.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.features.vectorize import Feature, FeatureExtractor
from repro.observability import get_event_log, get_registry, get_tracer
from repro.observability.events import decision_path_payload
from repro.smart.attributes import N_CHANNELS, channel_index
from repro.utils.errors import FaultKind, SampleFault
from repro.utils.validation import check_positive

#: Schema tag on :meth:`FleetMonitor.health_report` (bump on breaking change).
HEALTH_REPORT_SCHEMA = "repro.health-report/v1"

#: Scores one feature row; returns a class label or health degree.
SampleScorer = Callable[[np.ndarray], float]

#: Scores a stacked ``(n_rows, n_features)`` matrix in one call.
BatchScorer = Callable[[np.ndarray], np.ndarray]

#: Serving engines: ``"object"`` is the per-drive reference path,
#: ``"columnar"`` the structure-of-arrays hot path (bit-identical).
ENGINES = ("object", "columnar")

# Counter help strings, shared verbatim by both engines so registry
# snapshots (and therefore health_report metrics) stay bit-identical.
TICKS_HELP = "observations offered"
FAULTS_HELP = "malformed ticks excluded by the gate"
SCORED_HELP = "ticks scored"
FLIPS_HELP = "alarm-signal transitions"
ALERTS_HELP = "alerts raised"
QUARANTINED_HELP = "drives transitioned to DEGRADED"


def _json_score(score: float) -> Optional[float]:
    """A score as event-payload JSON: non-finite values become None."""
    return float(score) if np.isfinite(score) else None


def _duplicate_serial_fault(serial: str, hour: float) -> SampleFault:
    """The fault recorded for each overridden duplicate-serial record.

    Shared by both engines so the fault detail (and the ``tick_faulted``
    payload built from it) is identical on the object and columnar
    paths.
    """
    return SampleFault(
        serial,
        float(hour) if np.isfinite(hour) else np.nan,
        FaultKind.DUPLICATE_SERIAL,
        f"serial {serial!r} repeated within one tick; last write wins",
    )


def _normalize_tick(
    records: Union[Mapping[str, Sequence[float]], Iterable[tuple]],
) -> tuple[list[tuple], list[str]]:
    """Canonicalise one collection tick into unique ``(serial, values)`` pairs.

    ``records`` may be a serial→values mapping (the historical API,
    duplicates impossible) or an iterable of ``(serial, values)`` pairs
    (the array-friendly form).  A serial repeated within one tick
    resolves **last-write-wins**: the serial keeps its first position in
    the tick but carries the values of its final occurrence, and every
    overridden occurrence is returned in ``duplicates`` (discovery
    order) so the gate can record a ``duplicate-serial`` fault instead
    of silently double-pushing the drive's voting window.
    """
    if isinstance(records, Mapping):
        return list(records.items()), []
    items: list[tuple] = []
    position: dict[str, int] = {}
    duplicates: list[str] = []
    for serial, values in records:
        at = position.get(serial)
        if at is None:
            position[serial] = len(items)
            items.append((serial, values))
        else:
            items[at] = (serial, values)
            duplicates.append(serial)
    return items, duplicates


class OnlineFeatureBuffer:
    """Incremental feature computation for one drive.

    Keeps a bounded history of raw channel readings so change-rate
    features can look back ``interval`` hours.  Observations must arrive
    in strictly increasing hour order; gaps (missed samples) are fine —
    a change rate whose lag hour was never observed is NaN, matching
    :func:`repro.features.change_rates.change_rate`.
    """

    def __init__(self, features: Sequence[Feature]):
        self.features = tuple(features)
        if not self.features:
            raise ValueError("at least one feature is required")
        self._max_lag = max(
            (f.change_interval_hours for f in self.features), default=0.0
        )
        self._history: deque[tuple[float, np.ndarray]] = deque()
        self._last_hour: Optional[float] = None

    def push(self, hour: float, channel_values: Sequence[float]) -> np.ndarray:
        """Ingest one SMART record; return the feature row for this hour."""
        values = np.asarray(channel_values, dtype=float)
        if values.shape != (N_CHANNELS,):
            raise ValueError(
                f"channel_values must have shape ({N_CHANNELS},), got {values.shape}"
            )
        hour = float(hour)
        if self._last_hour is not None and hour <= self._last_hour:
            raise ValueError(
                f"observations must be in increasing hour order "
                f"({hour} after {self._last_hour})"
            )
        self._last_hour = hour
        self._history.append((float(hour), values))
        # Drop history older than the longest lag (keep the lag hour itself).
        while self._history and self._history[0][0] < hour - self._max_lag:
            self._history.popleft()

        row = np.empty(len(self.features))
        for column, feature in enumerate(self.features):
            channel = channel_index(feature.short)
            current = values[channel]
            if not feature.is_change_rate:
                row[column] = current
                continue
            lag_hour = hour - feature.change_interval_hours
            lagged = self._lookup(lag_hour, channel)
            if lagged is None or not np.isfinite(current) or not np.isfinite(lagged):
                row[column] = np.nan
            else:
                row[column] = (current - lagged) / feature.change_interval_hours
        return row

    def _lookup(self, hour: float, channel: int) -> Optional[float]:
        for recorded_hour, values in self._history:
            if np.isclose(recorded_hour, hour):
                return float(values[channel])
        return None


class WindowedVoter:
    """Shared mechanics of the streaming (windowed) voting rules.

    Owns the single semantics source every windowed rule pins against:
    the bounded window itself, the full-window alarm gate (``push``
    never alarms before ``n_voters`` samples arrived), the
    short-history flush rule (a shorter-than-window history is judged
    once, over all its samples, like the offline detectors), and the
    provenance snapshot.  Subclasses define how one score is stored
    (:meth:`_ingest`), how a window width is judged (:meth:`_judge`)
    and how one slot renders into provenance (:meth:`_slot_payload`).
    The columnar ring-buffer voters
    (:mod:`repro.detection.columnar`) replicate exactly these
    semantics, matrix-wide.
    """

    def __init__(self, n_voters: int):
        check_positive("n_voters", n_voters)
        self.n_voters = int(n_voters)
        self._window: deque = deque(maxlen=self.n_voters)

    def push(self, score: float) -> bool:
        """Ingest one per-sample score; True when this time point alarms."""
        self._ingest(score)
        if len(self._window) < self.n_voters:
            return False
        return self._judge(self.n_voters)

    def flush_short_history(self) -> bool:
        """Judge a drive whose whole history is shorter than the window.

        Mirrors the offline rule that short series are judged once over
        all their samples.  A filled window is never re-judged.
        """
        if not self._window or len(self._window) >= self.n_voters:
            return False
        return self._judge(len(self._window))

    def window_contents(self) -> list:
        """The current voting window, oldest first.

        Alert provenance snapshots this at the moment the window
        flipped, so ``repro-events explain`` can show exactly which
        votes carried the decision.
        """
        return [self._slot_payload(slot) for slot in self._window]

    # -- rule-specific hooks -------------------------------------------------

    def _ingest(self, score: float) -> None:
        raise NotImplementedError

    def _judge(self, width: int) -> bool:
        raise NotImplementedError

    def _slot_payload(self, slot):
        return slot


class OnlineMajorityVote(WindowedVoter):
    """Streaming equivalent of :class:`~repro.detection.voting.MajorityVoteDetector`.

    ``push`` returns True the first time the trailing window holds a
    strict failed majority.  NaN scores (missed/unusable samples) occupy
    a window slot but never count as failed votes.
    """

    def __init__(self, n_voters: int = 1, failed_label: float = -1.0):
        super().__init__(n_voters)
        self.failed_label = failed_label
        self._failed_in_window = 0

    def _ingest(self, score: float) -> None:
        if len(self._window) == self._window.maxlen and self._window[0]:
            self._failed_in_window -= 1
        vote = bool(np.isfinite(score) and score == self.failed_label)
        self._window.append(vote)
        if vote:
            self._failed_in_window += 1

    def _judge(self, width: int) -> bool:
        return self._failed_in_window > width / 2.0


class OnlineMeanThreshold(WindowedVoter):
    """Streaming equivalent of :class:`~repro.detection.voting.MeanThresholdDetector`."""

    def __init__(self, n_voters: int = 11, threshold: float = 0.0):
        super().__init__(n_voters)
        self.threshold = float(threshold)

    def _ingest(self, score: float) -> None:
        self._window.append(float(score))

    def _judge(self, width: int) -> bool:
        values = np.array(list(self._window)[-width:])
        valid = values[np.isfinite(values)]
        return valid.size > 0 and float(valid.mean()) < self.threshold

    def _slot_payload(self, slot: float) -> Optional[float]:
        return float(slot) if np.isfinite(slot) else None


@dataclass(frozen=True)
class Alert:
    """A raised warning: which drive, when, and the triggering score.

    ``alert_id`` is deterministic (dense per monitor, in raise order) and
    names the matching ``alert_raised`` event in the structured log, so
    ``repro-events explain <alert-id>`` can pull up its provenance.
    """

    serial: str
    hour: float
    score: float
    alert_id: str = ""


class DriveStatus(enum.Enum):
    """Serving status of one monitored drive."""

    #: Feed is healthy; the drive is scored and may alert.
    OK = "ok"
    #: Too many malformed ticks; alerts suppressed, drive reported.
    DEGRADED = "degraded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class QuarantinePolicy:
    """When does a dirty feed degrade a drive?

    A malformed tick (wrong shape, non-finite/out-of-order/duplicate
    timestamp) is always excluded from scoring; once a drive has
    accumulated more than ``fault_limit`` of them it is flagged
    :attr:`DriveStatus.DEGRADED` — its alerts stop (an operator page
    driven by garbage telemetry is worse than none) and it surfaces in
    :meth:`FleetMonitor.degraded_drives` for operator attention.
    """

    fault_limit: int = 10

    def __post_init__(self) -> None:
        if self.fault_limit < 0:
            raise ValueError(f"fault_limit must be >= 0, got {self.fault_limit}")

    def degrades(self, fault_count: int) -> bool:
        """True when ``fault_count`` malformed ticks exceed the budget."""
        return fault_count > self.fault_limit


@dataclass
class _DriveState:
    buffer: OnlineFeatureBuffer
    detector: object
    alerted: bool = False
    fault_count: int = 0
    status: DriveStatus = DriveStatus.OK
    #: Last instantaneous alarm signal (``serve.vote_flips`` tracks its
    #: transitions; ``None`` until the first scored tick).
    last_signal: Optional[bool] = None
    #: Feature row of the most recent well-formed tick — the SMART
    #: evidence an ``alert_raised`` event's decision path explains.
    last_row: Optional[np.ndarray] = None
    #: True once an ``alert_cleared`` event has fired for this drive.
    cleared: bool = False


class FleetMonitor:
    """Routes streaming SMART records through a fitted model.

    Args:
        features: The feature definitions the model was trained on.
        score_sample: Callable scoring one feature row (e.g. wrapping
            ``predictor.tree_.predict``); rows with no finite feature are
            scored NaN without calling it.
        detector_factory: Zero-argument callable building a fresh online
            detector per drive (majority vote or mean threshold).
        score_batch: Optional callable scoring a stacked matrix in one
            call (e.g. ``predictor.tree_.predict`` directly).  When set,
            :meth:`observe_fleet` scores a whole collection tick through
            it — one compiled-backend routing pass for the fleet —
            instead of one ``score_sample`` call per drive.
        quarantine: The degraded-mode policy (see
            :class:`QuarantinePolicy`; a default policy is installed when
            omitted).  Pass ``quarantine=None`` for strict mode, where a
            malformed tick raises ``ValueError`` instead of being
            quarantined (the pre-degraded-mode behaviour; useful when
            the feed is trusted and corruption means a caller bug).
        tree: Optional fitted tree (anything with
            ``decision_path(row)``, e.g. ``predictor.tree_``) used to
            attach decision-path provenance to every ``alert_raised``
            event.  Identical output under the compiled and node
            backends, so provenance never depends on the serving
            backend.
        feature_names: Optional names for the feature columns, rendered
            into provenance steps (defaults to the ``features``
            descriptions).
        model_generation: Generation number of the serving model,
            stamped on alert provenance; bumped by :meth:`set_model`.
        slo: Optional :class:`~repro.observability.slo.SLOMonitor` fed
            by :meth:`resolve_outcome`; its burn status is embedded in
            :meth:`health_report`.
        engine: Serving engine — ``"object"`` (default) keeps one
            python object per drive (the reference backend);
            ``"columnar"`` serves the fleet from structure-of-arrays
            state (:mod:`repro.detection.columnar`) with bit-identical
            alerts, reports and events.  The columnar engine requires a
            built-in windowed voter (:class:`OnlineMajorityVote` or
            :class:`OnlineMeanThreshold`) from ``detector_factory``.

    Example:
        >>> from repro.features.selection import critical_features
        >>> monitor = FleetMonitor(
        ...     critical_features(),
        ...     score_sample=lambda row: 1.0,
        ...     detector_factory=lambda: OnlineMajorityVote(3),
        ... )
        >>> import numpy as np
        >>> monitor.observe("d1", 0.0, np.ones(12)) is None
        True
    """

    _DEFAULT_QUARANTINE = QuarantinePolicy()

    def __init__(
        self,
        features: Sequence[Feature],
        score_sample: SampleScorer,
        detector_factory: Callable[[], object],
        *,
        score_batch: Optional[BatchScorer] = None,
        quarantine: Optional[QuarantinePolicy] = _DEFAULT_QUARANTINE,
        tree: Optional[object] = None,
        feature_names: Optional[Sequence[str]] = None,
        model_generation: int = 0,
        slo: Optional[object] = None,
        engine: str = "object",
    ):
        self.features = tuple(features)
        self.score_sample = score_sample
        self.detector_factory = detector_factory
        self.score_batch = score_batch
        self.quarantine = quarantine
        self.tree = tree
        self.feature_names = (
            tuple(feature_names)
            if feature_names is not None
            else tuple(f.name for f in self.features)
        )
        self.model_generation = int(model_generation)
        self.slo = slo
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.engine = engine
        self._drives: dict[str, _DriveState] = {}
        self.alerts: list[Alert] = []
        self.faults: list[SampleFault] = []
        self.vote_flips = 0
        self._tick_serials: Optional[tuple[str, ...]] = None
        if engine == "columnar":
            from repro.detection.columnar import ColumnarEngine

            self._columnar: Optional[ColumnarEngine] = ColumnarEngine(self)
        else:
            self._columnar = None

    @classmethod
    def from_predictor(
        cls,
        predictor,
        detector_factory: Callable[[], object],
        *,
        engine: str = "columnar",
        **kwargs,
    ) -> "FleetMonitor":
        """Build a monitor serving a fitted pipeline's tree.

        ``predictor`` is any fitted pipeline exposing ``extractor`` and
        ``tree_`` (e.g. :class:`~repro.core.predictor.DriveFailurePredictor`
        or :class:`~repro.core.predictor.HealthDegreePredictor`): the
        monitor scores through the tree's compiled batch entry point
        (:meth:`~repro.tree.base.BaseDecisionTree.batch_scorer`) and
        attaches the tree for decision-path provenance.  Extra keyword
        arguments pass through to the constructor.
        """
        tree = predictor.tree_
        if tree is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return cls(
            predictor.extractor.features,
            score_sample=tree.sample_scorer(),
            detector_factory=detector_factory,
            score_batch=tree.batch_scorer(),
            tree=tree,
            engine=engine,
            **kwargs,
        )

    def _state(self, serial: str) -> _DriveState:
        state = self._drives.get(serial)
        if state is None:
            state = _DriveState(
                buffer=OnlineFeatureBuffer(self.features),
                detector=self.detector_factory(),
            )
            self._drives[serial] = state
        return state

    # -- the validation gate -------------------------------------------------

    def _gate(
        self, serial: str, state: _DriveState, hour: float, values: Sequence[float]
    ) -> Union[np.ndarray, SampleFault]:
        """Validate one tick; a clean tick comes back as its channel array.

        A malformed tick is returned as a :class:`SampleFault` (strict
        mode raises instead), already counted against the drive's
        quarantine budget and appended to :attr:`faults`.
        """
        registry = get_registry()
        registry.counter("serve.ticks", help=TICKS_HELP).inc()
        fault: Optional[SampleFault] = None
        array = np.asarray(values, dtype=float)
        last = state.buffer._last_hour
        if array.shape != (N_CHANNELS,):
            fault = SampleFault(
                serial, float(hour) if np.isfinite(hour) else np.nan,
                FaultKind.WRONG_SHAPE,
                f"expected ({N_CHANNELS},) channel values, got {array.shape}",
            )
        elif not np.isfinite(hour):
            fault = SampleFault(
                serial, np.nan, FaultKind.NON_FINITE_TIME,
                f"timestamp {hour!r} is not a finite hour",
            )
        elif last is not None and hour == last:
            fault = SampleFault(
                serial, float(hour), FaultKind.DUPLICATE_TIME,
                f"hour {hour} already ingested",
            )
        elif last is not None and hour < last:
            fault = SampleFault(
                serial, float(hour), FaultKind.OUT_OF_ORDER,
                f"hour {hour} arrived after {last}",
            )
        if fault is None:
            return array
        self._quarantine_fault(serial, state, fault)
        return fault

    def _quarantine_fault(
        self, serial: str, state: _DriveState, fault: SampleFault
    ) -> None:
        """Record one malformed tick against a drive's quarantine budget.

        Strict mode (``quarantine=None``) raises instead.  Shared by the
        in-stream gate and the duplicate-serial check so every fault
        kind flows through one bookkeeping path.
        """
        if self.quarantine is None:
            raise ValueError(f"drive {serial}: {fault.kind}: {fault.detail}")
        registry = get_registry()
        self.faults.append(fault)
        state.fault_count += 1
        registry.counter(
            "serve.faults", help=FAULTS_HELP, kind=fault.kind.value,
        ).inc()
        log = get_event_log()
        log.emit(
            "tick_faulted", drive=serial, hour=fault.hour,
            kind=fault.kind.value, detail=fault.detail,
        )
        if self.quarantine.degrades(state.fault_count):
            if state.status is not DriveStatus.DEGRADED:
                registry.counter(
                    "serve.quarantined", help=QUARANTINED_HELP
                ).inc()
                log.emit(
                    "drive_quarantined", drive=serial, hour=fault.hour,
                    fault_count=state.fault_count,
                    fault_limit=self.quarantine.fault_limit,
                )
            state.status = DriveStatus.DEGRADED

    def _record_score(
        self, serial: str, state: _DriveState, hour: float, score: float
    ) -> Optional[Alert]:
        """Feed one score to the drive's detector; latch and report alerts.

        Degraded drives keep their detector state current but never
        alert — a page driven by a quarantined feed would be noise.
        Emits the lifecycle events (``sample_scored`` → ``vote_flip`` →
        ``alert_raised``/``alert_cleared``) into the structured log;
        with the default null log every emission is a no-op.
        """
        log = get_event_log()
        if log.enabled and np.isfinite(score):
            log.emit("sample_scored", drive=serial, hour=hour, score=float(score))
        alarmed = state.detector.push(score)
        previous = state.last_signal
        if previous is not None and alarmed != previous:
            self.vote_flips += 1
            get_registry().counter(
                "serve.vote_flips", help=FLIPS_HELP
            ).inc()
            log.emit("vote_flip", drive=serial, hour=hour, signal=bool(alarmed))
        state.last_signal = alarmed
        if alarmed and not state.alerted and state.status is DriveStatus.OK:
            state.alerted = True
            alert = Alert(
                serial=serial, hour=float(hour), score=score,
                alert_id=f"alert-{len(self.alerts):04d}",
            )
            self.alerts.append(alert)
            get_registry().counter("serve.alerts", help=ALERTS_HELP).inc()
            if log.enabled:
                log.emit(
                    "alert_raised", drive=serial, hour=hour,
                    **self._provenance(alert, state),
                )
            return alert
        if (
            not alarmed and previous and state.alerted and not state.cleared
            and state.status is DriveStatus.OK
        ):
            state.cleared = True
            log.emit("alert_cleared", drive=serial, hour=hour, score=_json_score(score))
        return None

    def _provenance(self, alert: Alert, state: _DriveState) -> dict:
        """The evidence payload of an ``alert_raised`` event.

        Built only when a recording event log is installed: the alert
        id, the triggering score, the serving model's generation, the
        voting-window contents at the flip, and — when the monitor
        knows its ``tree`` — the CART decision path that classified the
        last well-formed sample (identical for the compiled and node
        backends by construction).
        """
        payload: dict = {
            "alert_id": alert.alert_id,
            "score": _json_score(alert.score),
            "model_generation": self.model_generation,
        }
        window = getattr(state.detector, "window_contents", None)
        if window is not None:
            payload["window"] = window()
        if self.tree is not None and state.last_row is not None:
            payload["path"] = decision_path_payload(
                self.tree, state.last_row, self.feature_names
            )
        return payload

    def observe(
        self, serial: str, hour: float, channel_values: Sequence[float]
    ) -> Optional[Alert]:
        """Ingest one record; return an :class:`Alert` if the drive trips.

        A drive raises at most one alert (further records are ignored for
        alerting but still tracked, so health queries stay current).
        Malformed ticks are quarantined — counted, excluded from scoring
        and voting — rather than raised (see the class docs); missing
        values inside a well-formed tick flow through to the model's
        surrogate routing unchanged.
        """
        if self._columnar is not None:
            alerts = self._columnar.tick(
                hour, [(serial, channel_values)], [], single=True
            )
            return alerts[0] if alerts else None
        state = self._state(serial)
        gated = self._gate(serial, state, hour, channel_values)
        if isinstance(gated, SampleFault):
            return None
        row = state.buffer.push(hour, gated)
        state.last_row = row
        if np.any(np.isfinite(row)):
            score = float(self.score_sample(row))
            get_registry().counter("serve.scored", help=SCORED_HELP).inc()
        else:
            score = np.nan
        return self._record_score(serial, state, hour, score)

    def observe_fleet(
        self,
        hour: float,
        records: Union[Mapping[str, Sequence[float]], Iterable[tuple]],
    ) -> list[Alert]:
        """Ingest one collection tick for many drives at once.

        ``records`` maps serials to that hour's channel readings, or is
        an iterable of ``(serial, values)`` pairs (a serial repeated
        within the tick resolves last-write-wins with a
        ``duplicate-serial`` fault per overridden record, see
        :func:`_normalize_tick`).  The tick's usable feature rows are
        stacked and scored together — one ``score_batch`` call when a
        batch scorer is installed.  Returns the alerts raised by this
        tick, in record order.
        """
        items, duplicates = _normalize_tick(records)
        return self._run_tick(hour, items, duplicates)

    def register_fleet(self, serials: Iterable[str]) -> tuple[str, ...]:
        """Fix the tick roster for :meth:`observe_tick`.

        Serving a stable fleet from arrays means the serial→row keying
        is resolved once, not per tick: register the roster, then feed
        each tick as one ``(n_drives, n_channels)`` matrix whose rows
        align with it.  Returns the normalized roster tuple.  No drive
        state is created until a tick actually arrives (a registered
        but never-observed fleet is not "watched").
        """
        self._tick_serials = tuple(serials)
        return self._tick_serials

    def observe_tick(
        self,
        hour: float,
        values: np.ndarray,
        serials: Optional[Sequence[str]] = None,
    ) -> list[Alert]:
        """Ingest one collection tick as a channel matrix (the array path).

        ``values`` is a ``(n_drives, n_channels)`` float matrix; row
        ``i`` is the reading of ``serials[i]`` (default: the roster from
        :meth:`register_fleet`).  On the columnar engine with a
        registered roster this is the zero-copy hot path: no per-drive
        python objects are touched.  Semantically identical to
        ``observe_fleet(hour, zip(serials, values))``.
        """
        roster = tuple(serials) if serials is not None else self._tick_serials
        if roster is None:
            raise ValueError(
                "no tick roster: pass serials= or call register_fleet() first"
            )
        matrix = np.ascontiguousarray(values, dtype=float)
        if matrix.shape != (len(roster), N_CHANNELS):
            raise ValueError(
                f"values must have shape ({len(roster)}, {N_CHANNELS}), "
                f"got {matrix.shape}"
            )
        if self._columnar is not None:
            return self._run_tick(hour, None, None, roster=roster, matrix=matrix)
        items, duplicates = _normalize_tick(zip(roster, matrix))
        return self._run_tick(hour, items, duplicates)

    def shard_tick(
        self,
        hour: float,
        items: Optional[list[tuple]],
        duplicates: Optional[list[str]],
        *,
        roster: Optional[tuple[str, ...]] = None,
        matrix: Optional[np.ndarray] = None,
    ) -> list[Alert]:
        """One shard's slice of a coordinator tick (no tick instrumentation).

        The entry point :class:`~repro.detection.sharded.ShardedFleetMonitor`
        drives: identical to a collection tick except that the
        tick-level instrumentation (``serve.fleet_ticks``, the
        ``serve.tick`` span, ``serve.tick_seconds``) is *not* emitted —
        the coordinator emits it once per logical tick, so the merged
        registry matches a single monitor's bit-for-bit instead of
        multiplying per-tick counters by the shard count.  Record-level
        instrumentation (``serve.ticks``/``serve.faults``/... and the
        lifecycle events) is emitted normally.

        Pass either normalized ``items``/``duplicates`` (from
        :func:`_normalize_tick`) or an aligned ``roster``/``matrix``
        pair (the zero-copy path; the roster must be duplicate-free).
        """
        if roster is not None:
            if self._columnar is not None:
                return self._columnar.tick_matrix(hour, roster, matrix)
            items, duplicates = _normalize_tick(zip(roster, matrix))
        if self._columnar is not None:
            return self._columnar.tick(hour, items, duplicates)
        return self._observe_fleet_impl(hour, items, duplicates)

    def _run_tick(
        self,
        hour: float,
        items: Optional[list[tuple]],
        duplicates: Optional[list[str]],
        *,
        roster: Optional[tuple[str, ...]] = None,
        matrix: Optional[np.ndarray] = None,
    ) -> list[Alert]:
        """Shared per-tick instrumentation around both engines."""
        registry = get_registry()
        start = perf_counter() if registry.enabled else 0.0
        n_drives = len(roster) if roster is not None else len(items)
        with get_tracer().span(
            "serve.tick", category="serve", n_drives=n_drives
        ):
            if roster is not None:
                alerts = self._columnar.tick_matrix(hour, roster, matrix)
            elif self._columnar is not None:
                alerts = self._columnar.tick(hour, items, duplicates)
            else:
                alerts = self._observe_fleet_impl(hour, items, duplicates)
        registry.counter("serve.fleet_ticks", help="collection ticks").inc()
        if registry.enabled:
            registry.histogram(
                "serve.tick_seconds", unit="seconds",
                help="collection tick wall time",
            ).observe(perf_counter() - start)
        return alerts

    def _observe_fleet_impl(
        self, hour: float, items: list[tuple], duplicates: list[str]
    ) -> list[Alert]:
        registry = get_registry()
        for serial in duplicates:
            registry.counter("serve.ticks", help=TICKS_HELP).inc()
            self._quarantine_fault(
                serial, self._state(serial), _duplicate_serial_fault(serial, hour)
            )
        ingested: list[tuple[str, _DriveState, np.ndarray]] = []
        for serial, values in items:
            state = self._state(serial)
            gated = self._gate(serial, state, hour, values)
            if isinstance(gated, SampleFault):
                continue
            row = state.buffer.push(hour, gated)
            state.last_row = row
            ingested.append((serial, state, row))
        usable = [
            index
            for index, (_, _, row) in enumerate(ingested)
            if np.any(np.isfinite(row))
        ]
        scores = np.full(len(ingested), np.nan)
        if usable:
            stacked = np.vstack([ingested[index][2] for index in usable])
            if self.score_batch is not None:
                scores[usable] = np.asarray(self.score_batch(stacked), dtype=float)
            else:
                scores[usable] = [
                    float(self.score_sample(stacked[at]))
                    for at in range(len(usable))
                ]
            registry.counter(
                "serve.scored", help=SCORED_HELP
            ).inc(len(usable))
        alerts = []
        for (serial, state, _), score in zip(ingested, scores):
            alert = self._record_score(serial, state, hour, float(score))
            if alert is not None:
                alerts.append(alert)
        return alerts

    def finalize(self) -> list[Alert]:
        """Apply the short-history rule to drives that never filled a window.

        Call once at the end of a replay; returns (and records) the extra
        alerts.  Idempotent per drive thanks to the ``alerted`` latch.
        """
        if self._columnar is not None:
            return self._columnar.finalize()
        extra = []
        log = get_event_log()
        for serial, state in self._drives.items():
            if state.alerted or state.status is not DriveStatus.OK:
                continue
            flush = getattr(state.detector, "flush_short_history", None)
            if flush is not None and flush():
                state.alerted = True
                alert = Alert(
                    serial=serial, hour=np.nan, score=np.nan,
                    alert_id=f"alert-{len(self.alerts):04d}",
                )
                self.alerts.append(alert)
                get_registry().counter("serve.alerts", help=ALERTS_HELP).inc()
                if log.enabled:
                    log.emit(
                        "alert_raised", drive=serial, hour=None,
                        short_history=True, **self._provenance(alert, state),
                    )
                extra.append(alert)
        return extra

    # -- model lifecycle and ground truth --------------------------------------

    def set_model(
        self,
        score_sample: SampleScorer,
        *,
        score_batch: Optional[BatchScorer] = None,
        tree: Optional[object] = None,
        feature_names: Optional[Sequence[str]] = None,
    ) -> int:
        """Swap the serving model in place; returns the new generation.

        The paper's Section V-C updating story, seen from the serving
        side: detector windows and alert latches survive the swap (the
        fleet keeps streaming), the generation counter bumps, and a
        ``model_replaced`` event records the transition so every later
        alert's provenance names the model that raised it.
        """
        self.score_sample = score_sample
        self.score_batch = score_batch
        self.tree = tree
        if feature_names is not None:
            self.feature_names = tuple(feature_names)
        previous = self.model_generation
        self.model_generation = previous + 1
        get_event_log().emit(
            "model_replaced",
            from_generation=previous,
            to_generation=self.model_generation,
        )
        return self.model_generation

    def resolve_outcome(
        self,
        serial: str,
        failed: bool,
        *,
        hour: Optional[float] = None,
        failure_hour: Optional[float] = None,
    ) -> str:
        """Record ground truth for a drive; returns its outcome label.

        Once an operator learns a drive's fate the alert latch resolves
        to one of ``detected`` / ``missed`` / ``false_alarm`` / ``good``.
        The outcome feeds the attached SLO monitor (when one was passed
        at construction) with the detection's lead time, and an
        ``outcome_resolved`` event lands in the log — the bridge from
        the alert lifecycle to the FDR/FAR/lead-time budgets.  When the
        drive had alerted, the event carries the resolving alert's id,
        so explain reports can attribute precision to the exact
        subtree that paged (:mod:`repro.explain.report`).
        """
        alerted = self._is_alerted(serial)
        if failed:
            outcome = "detected" if alerted else "missed"
        else:
            outcome = "false_alarm" if alerted else "good"
        alert = next((a for a in self.alerts if a.serial == serial), None)
        lead_hours: Optional[float] = None
        if (
            outcome == "detected" and alert is not None
            and failure_hour is not None and np.isfinite(alert.hour)
        ):
            lead_hours = float(failure_hour) - float(alert.hour)
        if hour is None:
            if failure_hour is not None:
                hour = failure_hour
            elif alert is not None and np.isfinite(alert.hour):
                hour = alert.hour
            else:
                hour = 0.0
        get_event_log().emit(
            "outcome_resolved", drive=serial, hour=hour,
            outcome=outcome,
            **({"alert_id": alert.alert_id}
               if alert is not None and alert.alert_id else {}),
            **({"lead_hours": lead_hours} if lead_hours is not None else {}),
        )
        if self.slo is not None:
            self.slo.record(float(hour), outcome, lead_hours=lead_hours, drive=serial)
        return outcome

    def _is_alerted(self, serial: str) -> bool:
        """Whether the drive's alert latch has fired (either engine)."""
        if self._columnar is not None:
            return self._columnar.is_alerted(serial)
        state = self._drives.get(serial)
        return state.alerted if state is not None else False

    def watched_drives(self) -> list[str]:
        """Serials currently tracked."""
        if self._columnar is not None:
            return self._columnar.watched_drives()
        return sorted(self._drives)

    # -- degraded-mode reporting ----------------------------------------------

    def drive_status(self, serial: str) -> DriveStatus:
        """Serving status of one drive (unknown serials are ``OK``)."""
        if self._columnar is not None:
            return self._columnar.drive_status(serial)
        state = self._drives.get(serial)
        return state.status if state is not None else DriveStatus.OK

    def degraded_drives(self) -> list[str]:
        """Serials currently quarantined (reported, never mis-scored)."""
        if self._columnar is not None:
            return self._columnar.degraded_drives()
        return sorted(
            serial
            for serial, state in self._drives.items()
            if state.status is DriveStatus.DEGRADED
        )

    def fault_counts(self) -> dict[str, int]:
        """Per-drive count of quarantined (malformed, excluded) ticks."""
        if self._columnar is not None:
            return self._columnar.fault_counts()
        return {
            serial: state.fault_count
            for serial, state in sorted(self._drives.items())
            if state.fault_count
        }

    def health_report(self) -> dict[str, object]:
        """One-call summary for operators: faults, quarantine, alerts.

        The dict is schema-tagged (``"schema"``, see
        ``docs/observability.md``) so downstream tooling can detect
        format changes.  When a recording metrics registry is installed
        the ``"metrics"`` section carries the serving-family
        (``serve.*``) series from the live snapshot; with the default
        no-op registry it is empty.
        """
        kinds: dict[str, int] = {}
        for fault in self.faults:
            kinds[fault.kind.value] = kinds.get(fault.kind.value, 0) + 1
        snapshot = get_registry().snapshot()
        watched = (
            self._columnar.n_watched()
            if self._columnar is not None
            else len(self._drives)
        )
        report: dict[str, object] = {
            "schema": HEALTH_REPORT_SCHEMA,
            "watched_drives": watched,
            "alerts": len(self.alerts),
            "faults_total": len(self.faults),
            "faults_by_kind": kinds,
            "degraded_drives": self.degraded_drives(),
            "vote_flips": self.vote_flips,
            "model_generation": self.model_generation,
            "metrics": {
                name: entry
                for name, entry in snapshot["metrics"].items()
                if name.startswith("serve.")
            },
        }
        if self.slo is not None:
            report["slo"] = self.slo.status()
        return report
