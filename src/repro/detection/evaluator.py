"""Drive-level evaluation harness.

Models emit per-sample scores — produced upstream by one batched
scoring call over the whole fleet's stacked sample matrix (see
:func:`repro.core.sampling.score_drives`) and split back into per-drive
:class:`DriveScoreSeries`.  This module runs a detector over each
drive's chronological score series and aggregates the paper's metrics:
a good drive that ever alarms is a false alarm, a failed drive that
alarms before its failure is a detection, and the alarm's lead time is
its TIA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Protocol, Sequence

import numpy as np

from repro.detection.metrics import DetectionResult, RocPoint
from repro.detection.voting import MajorityVoteDetector, MeanThresholdDetector
from repro.observability import get_event_log, get_registry, get_tracer
from repro.observability.metrics import LEAD_TIME_BUCKETS_H


class Detector(Protocol):
    """Anything that maps a score series to a first-alarm index."""

    def first_alarm(self, scores: object) -> Optional[int]:
        """Index of the first alarming sample, or ``None`` if never."""
        ...


@dataclass(frozen=True)
class DriveScoreSeries:
    """One test drive's chronological per-sample model outputs.

    ``scores`` are class labels for classifier models or health degrees
    for the RT model; NaN marks samples the model could not score
    (missing SMART records).  ``failure_hour`` is required for failed
    drives so TIA can be computed.
    """

    serial: str
    failed: bool
    hours: np.ndarray
    scores: np.ndarray
    failure_hour: Optional[float] = None

    def __post_init__(self) -> None:
        hours = np.asarray(self.hours, dtype=float)
        scores = np.asarray(self.scores, dtype=float)
        object.__setattr__(self, "hours", hours)
        object.__setattr__(self, "scores", scores)
        if hours.shape != scores.shape:
            raise ValueError(
                f"drive {self.serial}: hours {hours.shape} and scores "
                f"{scores.shape} must match"
            )
        if self.failed and self.failure_hour is None:
            raise ValueError(f"failed drive {self.serial} needs a failure_hour")


def evaluate_detection(
    series: Iterable[DriveScoreSeries], detector: Detector
) -> DetectionResult:
    """Run ``detector`` over every drive and aggregate FDR/FAR/TIA."""
    n_good = n_false = n_failed = n_detected = 0
    tia: list[float] = []
    series = list(series)
    with get_tracer().span(
        "detect.evaluate", category="detect", n_series=len(series)
    ):
        for drive in series:
            alarm = detector.first_alarm(drive.scores) if drive.scores.size else None
            if drive.failed:
                n_failed += 1
                if alarm is not None:
                    lead = float(drive.failure_hour - drive.hours[alarm])
                    if lead >= 0:
                        n_detected += 1
                        tia.append(lead)
            else:
                n_good += 1
                if alarm is not None:
                    n_false += 1
    registry = get_registry()
    registry.counter("detect.evaluations", help="detector evaluations").inc()
    registry.counter("detect.drives", help="score series evaluated").inc(len(series))
    registry.counter("detect.detected", help="failures alarmed in time").inc(n_detected)
    registry.counter("detect.false_alarms", help="good drives alarmed").inc(n_false)
    if registry.enabled:
        lead_hist = registry.histogram(
            "detect.lead_time_hours", LEAD_TIME_BUCKETS_H, unit="hours",
            help="alert lead time (TIA) per detected failure",
        )
        for lead in tia:
            lead_hist.observe(lead)
    result = DetectionResult(
        n_good=n_good,
        n_false_alarms=n_false,
        n_failed=n_failed,
        n_detected=n_detected,
        tia_hours=tuple(tia),
    )
    log = get_event_log()
    if log.enabled:
        log.emit(
            "detection_evaluated",
            n_series=len(series),
            n_detected=n_detected,
            n_failed=n_failed,
            n_false_alarms=n_false,
            n_good=n_good,
            fdr=round(result.fdr, 6),
            far=round(result.far, 6),
            mean_tia_hours=round(result.mean_tia_hours, 3),
        )
    return result


def roc_over_voters(
    series: Sequence[DriveScoreSeries],
    voters: Sequence[int],
    *,
    failed_label: float = -1.0,
) -> list[RocPoint]:
    """The paper's Figure 2/5 sweep: one ROC point per voter count N."""
    points = []
    for n in voters:
        result = evaluate_detection(
            series, MajorityVoteDetector(n_voters=n, failed_label=failed_label)
        )
        points.append(RocPoint(parameter=float(n), far=result.far, fdr=result.fdr))
    return points


def roc_over_thresholds(
    series: Sequence[DriveScoreSeries],
    thresholds: Sequence[float],
    *,
    n_voters: int = 11,
) -> list[RocPoint]:
    """The paper's Figure 10 sweep: one ROC point per RT output threshold."""
    points = []
    for threshold in thresholds:
        result = evaluate_detection(
            series, MeanThresholdDetector(n_voters=n_voters, threshold=threshold)
        )
        points.append(
            RocPoint(parameter=float(threshold), far=result.far, fdr=result.fdr)
        )
    return points
