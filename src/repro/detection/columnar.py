"""Structure-of-arrays serving engine for :class:`~repro.detection.streaming.FleetMonitor`.

The paper's deployment protocol scores every drive of a population once
per hour.  The reference engine walks one python object per drive per
tick — honest, readable, and linear in interpreter overhead.  This
module is the fleet-scale hot path behind
``FleetMonitor(engine="columnar")``: every piece of per-drive state
lives in a preallocated array keyed by a stable serial→row index, so a
collection tick is a handful of vectorized passes instead of
``n_drives`` python round-trips:

* the **validation gate** (shape / non-finite time / duplicate /
  out-of-order) becomes mask arithmetic against a ``_last_hour``
  column, feeding the exact same :class:`~repro.utils.errors.SampleFault`
  taxonomy and quarantine bookkeeping;
* **online features** come from :class:`_LagHistory`, a ring-buffered
  ``(n_drives, capacity)`` history holding only the channels that
  change-rate features look back at;
* **voting windows** are :class:`MajorityVoteMatrix` /
  :class:`MeanThresholdMatrix` — shift-left ``(n_drives, n_voters)``
  matrices whose storage order *is* window order, so provenance
  snapshots read straight out of a row;
* **scoring** stacks the tick's usable feature rows and makes a single
  ``score_batch`` call (one compiled-tree routing pass for the fleet).

The engine is pinned bit-identical to the object engine — same alerts,
same ``health_report()``, same structured-event stream (including
ordering), same quarantine decisions — by the golden parity suite in
``tests/test_detection_columnar.py``, mirroring the compiled-vs-node
tree backends.  Anywhere the two could diverge in float space (pairwise
summation reassociation in the mean voter) the matrix voter re-judges
boundary rows with the exact per-row rule.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.detection.streaming import (
    ALERTS_HELP,
    FAULTS_HELP,
    FLIPS_HELP,
    QUARANTINED_HELP,
    SCORED_HELP,
    TICKS_HELP,
    Alert,
    DriveStatus,
    OnlineMajorityVote,
    OnlineMeanThreshold,
    _duplicate_serial_fault,
    _json_score,
    _normalize_tick,
)
from repro.observability import get_event_log, get_registry
from repro.observability.events import decision_path_payload
from repro.smart.attributes import N_CHANNELS, channel_index
from repro.utils.errors import FaultKind, SampleFault

# Gate verdict codes (record-order fault emission keys off these).
_CLEAN, _SHAPE, _NF_TIME, _DUP_TIME, _OOO = 0, 1, 2, 3, 4


class _LagHistory:
    """Ring-buffered raw-channel history for change-rate lookback.

    Row-for-row equivalent of the deque inside
    :class:`~repro.detection.streaming.OnlineFeatureBuffer`, for the
    whole fleet at once.  ``hours`` is ``(n_rows, capacity)`` with NaN
    marking empty slots; ``values`` keeps only the channels change-rate
    features actually read.  A slot is *live* while its hour is within
    ``max_lag`` of the drive's newest push — the same retention rule the
    object buffer applies by popping its deque — so validity is decided
    at lookup time instead of by eviction, and a push that would
    overwrite a live slot doubles the capacity first.
    """

    def __init__(self, n_rows: int, channels: Sequence[int], max_lag: float):
        self.channels = tuple(channels)
        self.max_lag = float(max_lag)
        self.capacity = 8
        self.hours = np.full((n_rows, self.capacity), np.nan)
        self.values = np.full((n_rows, self.capacity, len(self.channels)), np.nan)
        self.pushes = np.zeros(n_rows, dtype=np.int64)

    def grow_rows(self, n_rows: int) -> None:
        extra = n_rows - self.hours.shape[0]
        self.hours = np.concatenate(
            [self.hours, np.full((extra, self.capacity), np.nan)]
        )
        self.values = np.concatenate(
            [self.values, np.full((extra, self.capacity, len(self.channels)), np.nan)]
        )
        self.pushes = np.concatenate([self.pushes, np.zeros(extra, dtype=np.int64)])

    def _grow_capacity(self) -> None:
        old = self.capacity
        n_rows = self.hours.shape[0]
        self.hours = np.concatenate(
            [self.hours, np.full((n_rows, old), np.nan)], axis=1
        )
        self.values = np.concatenate(
            [self.values, np.full((n_rows, old, len(self.channels)), np.nan)], axis=1
        )
        self.capacity = old * 2
        # Uniform write cursor: the next push of every row lands in the
        # first fresh slot.  Lookups rank by stored hour, never by slot
        # position, so re-aligning cursors is safe.
        self.pushes[:] = old

    def push(self, rows: np.ndarray, hour: float, lag_values: np.ndarray) -> None:
        slots = self.pushes[rows] % self.capacity
        stale = self.hours[rows, slots]
        if np.any(np.isfinite(stale) & (stale >= hour - self.max_lag)):
            self._grow_capacity()
            slots = self.pushes[rows] % self.capacity
        self.hours[rows, slots] = hour
        self.values[rows, slots, :] = lag_values
        self.pushes[rows] += 1

    def lookup(self, rows: np.ndarray, lag_hour: float, now: float) -> np.ndarray:
        """Lagged channel values per row; NaN where the lag hour is absent.

        Mirrors the object buffer's scan: only slots still within
        ``max_lag`` of ``now`` count, ``np.isclose`` matches the lag
        hour, and among multiple matches the oldest wins (per-drive
        hours are strictly increasing, so oldest = smallest).
        """
        stored = self.hours[rows]
        live = np.isfinite(stored) & (stored >= now - self.max_lag)
        with np.errstate(invalid="ignore"):
            match = live & np.isclose(stored, lag_hour)
        found = match.any(axis=1)
        pick = np.argmin(np.where(match, stored, np.inf), axis=1)
        out = self.values[rows, pick, :]
        out[~found] = np.nan
        return out


class MajorityVoteMatrix:
    """Matrix-wide :class:`~repro.detection.streaming.OnlineMajorityVote`.

    One int8 shift-left window per row: ``-1`` marks an unfilled slot,
    ``0``/``1`` a vote, and storage order is window order (oldest
    first), so provenance reads a row verbatim.
    """

    def __init__(self, n_voters: int, failed_label: float, n_rows: int):
        self.n_voters = int(n_voters)
        self.failed_label = failed_label
        self.window = np.full((n_rows, self.n_voters), -1, dtype=np.int8)
        self.length = np.zeros(n_rows, dtype=np.int64)

    def grow_rows(self, n_rows: int) -> None:
        extra = n_rows - self.window.shape[0]
        self.window = np.concatenate(
            [self.window, np.full((extra, self.n_voters), -1, dtype=np.int8)]
        )
        self.length = np.concatenate([self.length, np.zeros(extra, dtype=np.int64)])

    def push(self, rows: np.ndarray, scores: np.ndarray) -> np.ndarray:
        votes = (np.isfinite(scores) & (scores == self.failed_label)).astype(np.int8)
        window = self.window[rows]
        window[:, :-1] = window[:, 1:]
        window[:, -1] = votes
        self.window[rows] = window
        self.length[rows] = np.minimum(self.length[rows] + 1, self.n_voters)
        fails = (window == 1).sum(axis=1)
        return (self.length[rows] == self.n_voters) & (fails > self.n_voters / 2.0)

    def flush(self, row: int) -> bool:
        filled = int(self.length[row])
        if filled == 0 or filled >= self.n_voters:
            return False
        fails = int((self.window[row] == 1).sum())
        return fails > filled / 2.0

    def window_contents(self, row: int) -> list:
        window = self.window[row]
        return [bool(vote) for vote in window[window >= 0]]


class MeanThresholdMatrix:
    """Matrix-wide :class:`~repro.detection.streaming.OnlineMeanThreshold`.

    Float64 shift-left windows with NaN both as the unfilled-slot marker
    and as the unscorable-sample gap (the first ``length`` check keeps
    the two apart).  The alarm decision masks NaN to ``0.0`` and divides
    by the finite count — the same mean the object voter takes over its
    compacted window, except that numpy's pairwise summation may
    associate the additions differently; rows whose mean lands within
    the reassociation error bound of the threshold are re-judged with
    the exact per-row rule so the decision is bit-for-bit the object
    voter's.
    """

    def __init__(self, n_voters: int, threshold: float, n_rows: int):
        self.n_voters = int(n_voters)
        self.threshold = float(threshold)
        self.window = np.full((n_rows, self.n_voters), np.nan)
        self.length = np.zeros(n_rows, dtype=np.int64)

    def grow_rows(self, n_rows: int) -> None:
        extra = n_rows - self.window.shape[0]
        self.window = np.concatenate(
            [self.window, np.full((extra, self.n_voters), np.nan)]
        )
        self.length = np.concatenate([self.length, np.zeros(extra, dtype=np.int64)])

    def push(self, rows: np.ndarray, scores: np.ndarray) -> np.ndarray:
        window = self.window[rows]
        window[:, :-1] = window[:, 1:]
        window[:, -1] = scores
        self.window[rows] = window
        self.length[rows] = np.minimum(self.length[rows] + 1, self.n_voters)
        full = self.length[rows] == self.n_voters
        finite = np.isfinite(window)
        counts = finite.sum(axis=1)
        sums = np.where(finite, window, 0.0).sum(axis=1)
        sums_abs = np.where(finite, np.abs(window), 0.0).sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
            alarm = full & (counts > 0) & (means < self.threshold)
            eps = np.finfo(float).eps
            tolerance = 4.0 * eps * (
                self.n_voters * sums_abs / np.maximum(counts, 1)
                + abs(self.threshold)
            )
            suspect = full & (counts > 0) & (
                np.abs(means - self.threshold) <= tolerance
            )
        for at in np.nonzero(suspect)[0]:
            alarm[at] = self._judge_exact(window[at])
        return alarm

    def _judge_exact(self, values: np.ndarray) -> bool:
        valid = values[np.isfinite(values)]
        return valid.size > 0 and float(valid.mean()) < self.threshold

    def flush(self, row: int) -> bool:
        filled = int(self.length[row])
        if filled == 0 or filled >= self.n_voters:
            return False
        return self._judge_exact(self.window[row, self.n_voters - filled:])

    def window_contents(self, row: int) -> list:
        filled = min(int(self.length[row]), self.n_voters)
        window = self.window[row, self.n_voters - filled:]
        return [float(v) if np.isfinite(v) else None for v in window]


def window_matrix_for(detector: object, n_rows: int = 0):
    """The matrix voter replicating one built-in windowed detector."""
    if type(detector) is OnlineMajorityVote:
        return MajorityVoteMatrix(detector.n_voters, detector.failed_label, n_rows)
    if type(detector) is OnlineMeanThreshold:
        return MeanThresholdMatrix(detector.n_voters, detector.threshold, n_rows)
    raise ValueError(
        "engine='columnar' needs detector_factory to build a built-in "
        "windowed voter (OnlineMajorityVote or OnlineMeanThreshold), got "
        f"{type(detector).__name__}; use engine='object' for custom detectors"
    )


class ColumnarEngine:
    """The structure-of-arrays state behind ``engine="columnar"``.

    Owned by one :class:`~repro.detection.streaming.FleetMonitor`;
    shares the monitor's public result surfaces (``alerts``, ``faults``,
    ``vote_flips``) and keeps everything per-drive in parallel arrays
    grown by capacity doubling.  Rows are allocated in first-seen order,
    exactly matching the object engine's ``_drives`` dict insertion
    order, so :meth:`finalize` walks drives in the same order and
    assigns the same dense alert ids.
    """

    def __init__(self, monitor):
        self.monitor = monitor
        features = monitor.features
        self._n_features = len(features)
        self._value_cols = [
            (j, channel_index(f.short))
            for j, f in enumerate(features)
            if not f.is_change_rate
        ]
        self._rate_cols = [
            (j, channel_index(f.short), float(f.change_interval_hours))
            for j, f in enumerate(features)
            if f.is_change_rate
        ]
        lag_channels = sorted({channel for _, channel, _ in self._rate_cols})
        self._lag_channels = np.asarray(lag_channels, dtype=np.intp)
        self._lag_col = {channel: at for at, channel in enumerate(lag_channels)}
        self._intervals = sorted({interval for _, _, interval in self._rate_cols})
        max_lag = max((interval for _, _, interval in self._rate_cols), default=0.0)
        # Fail fast on detectors the matrix voters cannot replicate.
        self._voter = window_matrix_for(monitor.detector_factory())
        self._history = (
            _LagHistory(0, lag_channels, max_lag) if self._rate_cols else None
        )
        self._capacity = 0
        self._row: dict[str, int] = {}
        self._serials: list[str] = []
        self._roster_cache: Optional[tuple] = None
        self._last_hour = np.empty(0)
        self._fault_count = np.empty(0, dtype=np.int64)
        self._degraded = np.empty(0, dtype=bool)
        self._alerted = np.empty(0, dtype=bool)
        self._cleared = np.empty(0, dtype=bool)
        self._last_signal = np.empty(0, dtype=np.int8)
        self._last_rows = np.empty((0, self._n_features))
        self._has_row = np.empty(0, dtype=bool)

    def __getstate__(self) -> dict:
        """Pickle support for shard snapshot/restore.

        The roster cache is keyed by tuple *identity*, which cannot
        survive a pickle round-trip; drop it so a restored engine
        re-resolves rows on its first tick (state, not caches, is what
        a snapshot preserves).
        """
        state = self.__dict__.copy()
        state["_roster_cache"] = None
        return state

    # -- row allocation -------------------------------------------------------

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = max(self._capacity * 2, 64)
        while capacity < n:
            capacity *= 2
        grow = capacity - self._capacity
        self._last_hour = np.concatenate([self._last_hour, np.full(grow, np.nan)])
        self._fault_count = np.concatenate(
            [self._fault_count, np.zeros(grow, dtype=np.int64)]
        )
        self._degraded = np.concatenate(
            [self._degraded, np.zeros(grow, dtype=bool)]
        )
        self._alerted = np.concatenate([self._alerted, np.zeros(grow, dtype=bool)])
        self._cleared = np.concatenate([self._cleared, np.zeros(grow, dtype=bool)])
        self._last_signal = np.concatenate(
            [self._last_signal, np.full(grow, -1, dtype=np.int8)]
        )
        self._last_rows = np.concatenate(
            [self._last_rows, np.full((grow, self._n_features), np.nan)]
        )
        self._has_row = np.concatenate([self._has_row, np.zeros(grow, dtype=bool)])
        if self._history is not None:
            self._history.grow_rows(capacity)
        self._voter.grow_rows(capacity)
        self._capacity = capacity

    def _row_for(self, serial: str) -> int:
        row = self._row.get(serial)
        if row is None:
            row = len(self._serials)
            self._ensure_capacity(row + 1)
            self._row[serial] = row
            self._serials.append(serial)
        return row

    # -- tick entry points ----------------------------------------------------

    def tick(
        self,
        hour: float,
        items: list[tuple],
        duplicates: list[str],
        *,
        single: bool = False,
    ) -> list[Alert]:
        """One collection tick from ``(serial, values)`` pairs.

        ``single=True`` marks a batch-of-one coming from
        ``FleetMonitor.observe`` — scored through ``score_sample`` like
        the object engine's single-record path.
        """
        registry = get_registry()
        strict = self.monitor.quarantine is None
        if duplicates:
            if strict:
                # Mirror the object loop: the tick counter covers the
                # record that raises, nothing past it is reached.
                registry.counter("serve.ticks", help=TICKS_HELP).inc()
                serial = duplicates[0]
                self._fault_row(
                    serial, self._row_for(serial),
                    _duplicate_serial_fault(serial, hour),
                )
            registry.counter("serve.ticks", help=TICKS_HELP).inc(len(duplicates))
            for serial in duplicates:
                self._fault_row(
                    serial, self._row_for(serial),
                    _duplicate_serial_fault(serial, hour),
                )
        n_before = len(self._serials)
        n = len(items)
        serials = [serial for serial, _ in items]
        rows = np.fromiter(
            (self._row_for(serial) for serial in serials), dtype=np.intp, count=n
        )
        values = np.empty((n, N_CHANNELS))
        bad_shape: dict[int, tuple] = {}
        for at, (_, channel_values) in enumerate(items):
            array = np.asarray(channel_values, dtype=float)
            if array.shape != (N_CHANNELS,):
                bad_shape[at] = array.shape
                values[at] = np.nan
            else:
                values[at] = array
        return self._process(hour, serials, rows, values, bad_shape, n_before, single)

    def tick_matrix(
        self, hour: float, roster: tuple, matrix: np.ndarray
    ) -> list[Alert]:
        """One collection tick as an aligned channel matrix (zero-copy).

        Row resolution is cached by roster identity: register a fleet
        once and repeated ticks touch no per-drive python at all.
        """
        cache = self._roster_cache
        if cache is not None and cache[0] is roster:
            rows = cache[1]
            n_before = len(self._serials)
        else:
            if len(set(roster)) != len(roster):
                items, duplicates = _normalize_tick(zip(roster, matrix))
                return self.tick(hour, items, duplicates)
            n_before = len(self._serials)
            rows = np.fromiter(
                (self._row_for(serial) for serial in roster),
                dtype=np.intp, count=len(roster),
            )
            self._roster_cache = (roster, rows)
        return self._process(hour, roster, rows, matrix, {}, n_before, False)

    # -- the vectorized hot path ----------------------------------------------

    def _process(
        self,
        hour: float,
        serials: Sequence[str],
        rows: np.ndarray,
        values: np.ndarray,
        bad_shape: dict[int, tuple],
        n_before: int,
        single: bool,
    ) -> list[Alert]:
        monitor = self.monitor
        registry = get_registry()
        strict = monitor.quarantine is None
        n = len(rows)

        # Vectorized validation gate; per-record verdicts with the same
        # priority order as the object gate.
        verdict = np.zeros(n, dtype=np.int8)
        for at in bad_shape:
            verdict[at] = _SHAPE
        last = self._last_hour[rows]
        if not np.isfinite(hour):
            verdict[verdict == _CLEAN] = _NF_TIME
        else:
            unjudged = verdict == _CLEAN
            verdict[unjudged & (last == hour)] = _DUP_TIME
            verdict[unjudged & (last > hour)] = _OOO
        faulted = verdict != _CLEAN

        if strict and faulted.any():
            first = int(np.argmax(faulted))
            # Records past the raising one were never reached by the
            # object loop: un-register any serial first seen there.
            doomed = rows[first + 1:]
            doomed = doomed[doomed >= n_before]
            if doomed.size:
                cutoff = int(doomed.min())
                for serial in self._serials[cutoff:]:
                    del self._row[serial]
                del self._serials[cutoff:]
                self._roster_cache = None
            registry.counter("serve.ticks", help=TICKS_HELP).inc(first + 1)
            head = ~faulted
            head[first:] = False
            if head.any():
                self._ingest(hour, rows[head], values[head])
            self._fault_row(
                serials[first], int(rows[first]),
                self._build_fault(
                    serials[first], hour, int(verdict[first]),
                    bad_shape.get(first), last[first],
                ),
            )  # raises

        if n:
            registry.counter("serve.ticks", help=TICKS_HELP).inc(n)
        if faulted.any():
            for at in np.nonzero(faulted)[0]:
                self._fault_row(
                    serials[at], int(rows[at]),
                    self._build_fault(
                        serials[at], hour, int(verdict[at]),
                        bad_shape.get(at), last[at],
                    ),
                )

        clean = ~faulted
        clean_rows = rows[clean]
        k = len(clean_rows)
        alerts: list[Alert] = []
        if k == 0:
            return alerts
        feature_rows = self._ingest(
            hour, clean_rows, values if k == n else values[clean]
        )

        # One scoring pass for the whole tick.
        usable = np.any(np.isfinite(feature_rows), axis=1)
        scores = np.full(k, np.nan)
        n_usable = int(np.count_nonzero(usable))
        if n_usable:
            stacked = feature_rows[usable]
            if single or monitor.score_batch is None:
                scores[usable] = [
                    float(monitor.score_sample(stacked[at]))
                    for at in range(n_usable)
                ]
            else:
                scores[usable] = np.asarray(
                    monitor.score_batch(stacked), dtype=float
                )
            registry.counter("serve.scored", help=SCORED_HELP).inc(n_usable)

        # Fleet-wide voting and alert latching.
        alarmed = self._voter.push(clean_rows, scores)
        previous = self._last_signal[clean_rows]
        previous_true = previous == 1
        flips = (previous >= 0) & (alarmed != previous_true)
        n_flips = int(np.count_nonzero(flips))
        if n_flips:
            monitor.vote_flips += n_flips
            registry.counter("serve.vote_flips", help=FLIPS_HELP).inc(n_flips)
        healthy = ~self._degraded[clean_rows]
        latched = self._alerted[clean_rows]
        new_alert = alarmed & ~latched & healthy
        cleared = (
            ~alarmed & previous_true & latched
            & ~self._cleared[clean_rows] & healthy
        )

        log = get_event_log()
        if log.enabled:
            # Per-drive lifecycle events must interleave exactly like the
            # object loop; the arrays above did the work, this loop only
            # narrates it.
            clean_at = np.nonzero(clean)[0]
            for at in range(k):
                serial = serials[clean_at[at]]
                score = scores[at]
                if np.isfinite(score):
                    log.emit(
                        "sample_scored", drive=serial, hour=hour,
                        score=float(score),
                    )
                if flips[at]:
                    log.emit(
                        "vote_flip", drive=serial, hour=hour,
                        signal=bool(alarmed[at]),
                    )
                if new_alert[at]:
                    alerts.append(
                        self._raise_alert(
                            serial, int(clean_rows[at]), hour, float(score), log
                        )
                    )
                elif cleared[at]:
                    log.emit(
                        "alert_cleared", drive=serial, hour=hour,
                        score=_json_score(score),
                    )
        elif new_alert.any():
            clean_at = np.nonzero(clean)[0]
            for at in np.nonzero(new_alert)[0]:
                alerts.append(
                    self._raise_alert(
                        serials[clean_at[at]], int(clean_rows[at]),
                        hour, float(scores[at]), log,
                    )
                )

        self._last_signal[clean_rows] = alarmed.astype(np.int8)
        if new_alert.any():
            self._alerted[clean_rows] |= new_alert
        if cleared.any():
            self._cleared[clean_rows] |= cleared
        return alerts

    def _ingest(
        self, hour: float, rows: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Push one tick of raw channels; return the tick's feature rows."""
        now = float(hour)
        feature_rows = np.empty((len(rows), self._n_features))
        lagged = {}
        if self._rate_cols:
            self._history.push(rows, now, values[:, self._lag_channels])
            for interval in self._intervals:
                lagged[interval] = self._history.lookup(rows, now - interval, now)
        for column, channel in self._value_cols:
            feature_rows[:, column] = values[:, channel]
        with np.errstate(invalid="ignore"):
            for column, channel, interval in self._rate_cols:
                current = values[:, channel]
                lag = lagged[interval][:, self._lag_col[channel]]
                rate = (current - lag) / interval
                feature_rows[:, column] = np.where(
                    np.isfinite(current) & np.isfinite(lag), rate, np.nan
                )
        self._last_hour[rows] = now
        self._last_rows[rows] = feature_rows
        self._has_row[rows] = True
        return feature_rows

    # -- fault and alert bookkeeping -------------------------------------------

    def _build_fault(
        self,
        serial: str,
        hour: float,
        verdict: int,
        shape: Optional[tuple],
        last: float,
    ) -> SampleFault:
        if verdict == _SHAPE:
            return SampleFault(
                serial, float(hour) if np.isfinite(hour) else np.nan,
                FaultKind.WRONG_SHAPE,
                f"expected ({N_CHANNELS},) channel values, got {shape}",
            )
        if verdict == _NF_TIME:
            return SampleFault(
                serial, np.nan, FaultKind.NON_FINITE_TIME,
                f"timestamp {hour!r} is not a finite hour",
            )
        if verdict == _DUP_TIME:
            return SampleFault(
                serial, float(hour), FaultKind.DUPLICATE_TIME,
                f"hour {hour} already ingested",
            )
        return SampleFault(
            serial, float(hour), FaultKind.OUT_OF_ORDER,
            f"hour {hour} arrived after {last}",
        )

    def _fault_row(self, serial: str, row: int, fault: SampleFault) -> None:
        """Array-state twin of ``FleetMonitor._quarantine_fault``."""
        monitor = self.monitor
        if monitor.quarantine is None:
            raise ValueError(f"drive {serial}: {fault.kind}: {fault.detail}")
        registry = get_registry()
        monitor.faults.append(fault)
        self._fault_count[row] += 1
        registry.counter(
            "serve.faults", help=FAULTS_HELP, kind=fault.kind.value,
        ).inc()
        log = get_event_log()
        log.emit(
            "tick_faulted", drive=serial, hour=fault.hour,
            kind=fault.kind.value, detail=fault.detail,
        )
        if monitor.quarantine.degrades(int(self._fault_count[row])):
            if not self._degraded[row]:
                registry.counter(
                    "serve.quarantined", help=QUARANTINED_HELP
                ).inc()
                log.emit(
                    "drive_quarantined", drive=serial, hour=fault.hour,
                    fault_count=int(self._fault_count[row]),
                    fault_limit=monitor.quarantine.fault_limit,
                )
            self._degraded[row] = True

    def _raise_alert(
        self, serial: str, row: int, hour: float, score: float, log
    ) -> Alert:
        monitor = self.monitor
        self._alerted[row] = True
        alert = Alert(
            serial=serial, hour=float(hour), score=score,
            alert_id=f"alert-{len(monitor.alerts):04d}",
        )
        monitor.alerts.append(alert)
        get_registry().counter("serve.alerts", help=ALERTS_HELP).inc()
        if log.enabled:
            log.emit(
                "alert_raised", drive=serial, hour=hour,
                **self._provenance(alert, row),
            )
        return alert

    def _provenance(self, alert: Alert, row: int) -> dict:
        monitor = self.monitor
        payload: dict = {
            "alert_id": alert.alert_id,
            "score": _json_score(alert.score),
            "model_generation": monitor.model_generation,
        }
        payload["window"] = self._voter.window_contents(row)
        if monitor.tree is not None and self._has_row[row]:
            payload["path"] = decision_path_payload(
                monitor.tree, self._last_rows[row], monitor.feature_names
            )
        return payload

    def finalize(self) -> list[Alert]:
        """Short-history flush in registration (first-seen) order."""
        monitor = self.monitor
        log = get_event_log()
        extra: list[Alert] = []
        for serial in self._serials:
            row = self._row[serial]
            if self._alerted[row] or self._degraded[row]:
                continue
            if not self._voter.flush(row):
                continue
            self._alerted[row] = True
            alert = Alert(
                serial=serial, hour=np.nan, score=np.nan,
                alert_id=f"alert-{len(monitor.alerts):04d}",
            )
            monitor.alerts.append(alert)
            get_registry().counter("serve.alerts", help=ALERTS_HELP).inc()
            if log.enabled:
                log.emit(
                    "alert_raised", drive=serial, hour=None,
                    short_history=True, **self._provenance(alert, row),
                )
            extra.append(alert)
        return extra

    # -- reporting accessors ---------------------------------------------------

    def watched_drives(self) -> list[str]:
        return sorted(self._row)

    def n_watched(self) -> int:
        return len(self._serials)

    def is_alerted(self, serial: str) -> bool:
        row = self._row.get(serial)
        return bool(self._alerted[row]) if row is not None else False

    def drive_status(self, serial: str) -> DriveStatus:
        row = self._row.get(serial)
        if row is not None and self._degraded[row]:
            return DriveStatus.DEGRADED
        return DriveStatus.OK

    def degraded_drives(self) -> list[str]:
        return sorted(
            serial for serial, row in self._row.items() if self._degraded[row]
        )

    def fault_counts(self) -> dict[str, int]:
        return {
            serial: int(self._fault_count[row])
            for serial, row in sorted(self._row.items())
            if self._fault_count[row]
        }
