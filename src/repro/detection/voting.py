"""Voting-based failure detection (Section V-A3 and V-C).

A single abnormal sample is weak evidence — measurement noise can flip
one reading — so the paper flags a drive only by vote: "when detecting a
drive, we check the last N consecutive samples (voters) before a time
point, and predict the drive is going to fail if more than N/2 samples
are classified as failed, and the next time point is tested otherwise."
For the RT health-degree model the vote is replaced by a threshold on
the *average* output of the last N samples.

Both rules are implemented as sliding-window scans over a drive's
chronological per-sample scores, returning the index of the first alarm
(or ``None``), from which the evaluator derives FDR, FAR and TIA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_1d, check_positive


def _sliding_sums(values: np.ndarray, window: int) -> np.ndarray:
    """Sums over trailing windows of length ``window`` (NaNs count as 0).

    Output index ``t`` covers samples ``[t - window + 1, t]``; positions
    with an incomplete window are NaN.  Windows are summed directly
    (not via prefix-sum differences, whose cancellation error can flip
    threshold comparisons for extreme value ranges).
    """
    filled = np.nan_to_num(values, nan=0.0)
    sums = np.full(values.shape[0], np.nan)
    if values.shape[0] >= window:
        windows = np.lib.stride_tricks.sliding_window_view(filled, window)
        sums[window - 1 :] = windows.sum(axis=1)
    return sums


@dataclass(frozen=True)
class MajorityVoteDetector:
    """Binary-classifier voting rule (used with CT / BP ANN / forests).

    Args:
        n_voters: Window length N (paper sweeps 1, 3, 5, ..., 27).
        failed_label: The class value meaning "failed" (paper: -1).

    A time point alarms when, among the valid (non-missing) votes in its
    window, failed votes outnumber half the *window* size — the paper's
    strict "more than N/2" bar, which missing samples cannot relax.
    Drives with fewer than N samples are judged once over all of them.
    """

    n_voters: int = 1
    failed_label: float = -1.0

    def __post_init__(self) -> None:
        check_positive("n_voters", self.n_voters)

    def first_alarm(self, scores: object) -> Optional[int]:
        """Index of the first alarming time point, or ``None``.

        ``scores`` are per-sample predicted labels in chronological
        order; NaN marks a missing sample.
        """
        labels = check_1d("scores", scores)
        if labels.shape[0] == 0:
            return None
        window = min(self.n_voters, labels.shape[0])
        failed_votes = _sliding_sums(
            np.where(np.isfinite(labels), labels == self.failed_label, 0.0), window
        )
        alarming = failed_votes > window / 2.0
        hits = np.nonzero(alarming)[0]
        return int(hits[0]) if hits.size else None


@dataclass(frozen=True)
class MeanThresholdDetector:
    """Health-degree voting rule (used with the RT model, Section V-C).

    "For each drive in test, if the average output of the last N samples
    is lower than the threshold, the drive is predicted to be failed."
    Missing samples are excluded from the average; a window with no
    valid sample cannot alarm.
    """

    n_voters: int = 11
    threshold: float = 0.0

    def __post_init__(self) -> None:
        check_positive("n_voters", self.n_voters)

    def first_alarm(self, scores: object) -> Optional[int]:
        """Index of the first time point whose window mean < threshold."""
        values = check_1d("scores", scores)
        if values.shape[0] == 0:
            return None
        window = min(self.n_voters, values.shape[0])
        valid = np.isfinite(values)
        sums = _sliding_sums(np.where(valid, values, 0.0), window)
        counts = _sliding_sums(valid.astype(float), window)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
        alarming = (counts > 0) & (means < self.threshold)
        hits = np.nonzero(alarming)[0]
        return int(hits[0]) if hits.size else None
