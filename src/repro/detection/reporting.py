"""Human-readable incident reports for raised alerts.

The paper's case for trees over neural networks is that an operator can
*read* the decision.  This module turns that into an operational
artefact: given a fitted CT pipeline and an alarming drive,
:func:`explain_alert` assembles the decision path (the Figure-1 walk
that classified the triggering samples), the attribute values that
crossed each condition, optional health context from an RT model, and a
next-action hint — the text a monitoring system would attach to a
ticket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.detection.voting import MajorityVoteDetector
from repro.smart.drive import DriveRecord

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard (core imports us)
    from repro.core.predictor import DriveFailurePredictor


@dataclass(frozen=True)
class PathStep:
    """One condition on the root-to-leaf walk of an alerting sample."""

    feature: str
    threshold: float
    went_left: bool
    value: float

    def __str__(self) -> str:
        comparator = "<" if self.went_left else ">="
        return f"{self.feature} = {self.value:g} {comparator} {self.threshold:g}"


@dataclass(frozen=True)
class AlertReport:
    """Everything an operator needs to act on one drive alert."""

    serial: str
    alarm_hour: float
    lead_estimate_hours: Optional[float]
    steps: tuple[PathStep, ...]
    leaf_confidence: float
    health_degree: Optional[float]
    recommendation: str

    def render(self) -> str:
        """The ticket text."""
        lines = [
            f"ALERT {self.serial} at t={self.alarm_hour:g}h "
            f"(leaf confidence {self.leaf_confidence:.0%})"
        ]
        if self.lead_estimate_hours is not None:
            lines.append(
                f"Estimated lead time: ~{self.lead_estimate_hours:.0f}h "
                f"(model's mean time in advance)"
            )
        if self.health_degree is not None:
            lines.append(f"Current health degree: {self.health_degree:+.2f} (+1 healthy, -1 failing)")
        lines.append("Why the model decided this:")
        lines.extend(f"  - {step}" for step in self.steps)
        lines.append(f"Recommended action: {self.recommendation}")
        return "\n".join(lines)


def _recommendation(health_degree: Optional[float]) -> str:
    if health_degree is None:
        return "schedule data migration and drive replacement"
    if health_degree < -0.5:
        return "URGENT: migrate data now; drive is in late deterioration"
    if health_degree < -0.1:
        return "migrate data within the next maintenance window"
    return "enqueue for replacement; monitor at increased frequency"


def explain_alert(
    predictor: "DriveFailurePredictor",
    drive: DriveRecord,
    *,
    n_voters: int = 11,
    mean_tia_hours: Optional[float] = None,
    health_model: Optional[object] = None,
) -> Optional[AlertReport]:
    """Build an :class:`AlertReport` for a drive, or ``None`` if it never alarms.

    Args:
        predictor: A fitted CT pipeline.
        drive: The drive to scan (its full recorded history).
        n_voters: The deployment's voting window.
        mean_tia_hours: The model's measured mean time in advance, used
            as the lead estimate shown to the operator.
        health_model: Optional fitted
            :class:`~repro.health.model.HealthDegreePredictor` for the
            health-degree context and the action hint.
    """
    series = predictor.score_drive(drive)
    detector = MajorityVoteDetector(n_voters=n_voters)
    alarm = detector.first_alarm(series.scores)
    if alarm is None:
        return None

    matrix = predictor.extractor.extract(drive)
    # Explain the nearest failed-classified sample at/before the alarm
    # point (the alarm index itself may be a good-voted or missing slot).
    failed_indices = np.nonzero(series.scores[: alarm + 1] == -1.0)[0]
    explain_index = int(failed_indices[-1]) if failed_indices.size else alarm
    row = matrix[explain_index]

    steps = []
    path = predictor.tree_.decision_path(row)
    names = predictor.extractor.names
    for node, child in zip(path[:-1], path[1:]):
        steps.append(
            PathStep(
                feature=names[node.feature],
                threshold=float(node.threshold),
                went_left=child is node.left,
                value=float(row[node.feature]),
            )
        )
    leaf = path[-1]
    confidence = (
        float(np.max(leaf.class_distribution))
        if leaf.class_distribution is not None
        else 1.0
    )

    health_degree = None
    if health_model is not None:
        health_series = health_model.score_drive(drive)
        valid = health_series.scores[np.isfinite(health_series.scores)]
        if valid.size:
            window = valid[-min(n_voters, valid.size):]
            health_degree = float(window.mean())

    return AlertReport(
        serial=drive.serial,
        alarm_hour=float(series.hours[alarm]),
        lead_estimate_hours=mean_tia_hours,
        steps=tuple(steps),
        leaf_confidence=confidence,
        health_degree=health_degree,
        recommendation=_recommendation(health_degree),
    )
