"""Sharded fleet serving: one logical monitor over millions of drives.

A single :class:`~repro.detection.streaming.FleetMonitor` — even on the
columnar engine — is one process, so fleet throughput stops at one
core.  This module scales the same serving semantics *out*:
:class:`ShardedFleetMonitor` partitions drives across N columnar shard
monitors by a stable serial hash (:func:`shard_for`), fans every
collection tick out to the shards — in-process (``mode="serial"``) or
on long-lived worker processes (``mode="process"``, one
:class:`~repro.utils.parallel.WorkerHost` per shard) — and merges the
per-shard results back into one coordinator-level truth:

* **Alerts** come home per shard with shard-local ids, are re-ordered
  into the tick's global record order and re-assigned dense coordinator
  ids, so ``alerts``/``alert_id`` are bit-identical to a single
  columnar monitor over the same stream.
* **Faults** merge deterministically: duplicate-serial faults in global
  discovery order, then record faults in global record order — the
  exact list a single monitor would have appended.
* **Observability** ships home in
  :class:`~repro.observability.RemoteObservation` envelopes (the same
  protocol as :func:`~repro.utils.parallel.run_tasks`): shard counters
  merge into the coordinator registry, shard spans nest under the
  coordinator's ``serve.tick`` span, and shard events are absorbed in
  a deterministic merge order — logical hour, then shard id, then
  shard-local sequence — with ``alert_raised`` payloads rewritten to
  the coordinator alert ids, so replaying the coordinator's event log
  (``repro-events``) reconstructs its state exactly.
* **SLO state** lives only at the coordinator: shards serve,
  :meth:`ShardedFleetMonitor.resolve_outcome` feeds the one attached
  :class:`~repro.observability.slo.SLOMonitor`, and
  :meth:`health_report` embeds its burn status like a single monitor.

On top of the data path sit the operational tools the scale-out story
needs: :meth:`snapshot`/:meth:`restore_shard` persist per-shard state
through :class:`~repro.utils.checkpoint.JsonCheckpoint` (kind
``shard-snapshot``) so a killed shard resumes **bit-identically**
mid-stream, and :meth:`begin_deployment` rolls a new model out through
canary shards — the canaries serve generation N+1 while the control
shards stay on N, alert rates are compared over a soak window, and the
parity verdict drives an automatic fleet-wide cutover or rollback.

Parity contract (pinned by ``tests/test_detection_sharded.py``): over
any shard count, the coordinator's alerts, alert ids, faults,
quarantine decisions, ``health_report()`` counters, SLO state, and
event *set* are identical to a single columnar ``FleetMonitor`` on the
same stream.  Only the tick-level wall-time histogram and the
``shard.*`` instrumentation family differ — sharding is a deployment
choice, never a semantic one.

Strict mode (``quarantine=None``) is not supported here: a
mid-tick ``ValueError`` unwinding across process boundaries cannot
preserve the reference engine's partial-tick state.  Use a single
``FleetMonitor`` when the feed is trusted enough for strict mode.
"""

from __future__ import annotations

import pickle
import warnings
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.detection.streaming import (
    HEALTH_REPORT_SCHEMA,
    Alert,
    DriveStatus,
    FleetMonitor,
    OnlineMajorityVote,
    OnlineMeanThreshold,
    QuarantinePolicy,
    _normalize_tick,
)
from repro.features.vectorize import Feature
from repro.observability import (
    RemoteObservation,
    absorb_remote,
    capture_remote,
    get_event_log,
    get_registry,
    get_tracer,
    worker_config,
)
from repro.smart.attributes import N_CHANNELS
from repro.utils.checkpoint import (
    SHARD_SNAPSHOT_KIND,
    JsonCheckpoint,
    decode_object,
    encode_object,
)
from repro.utils.errors import (
    SampleFault,
    UnpicklableTaskWarning,
    WorkerDiedError,
)
from repro.utils.parallel import WorkerHost, resolve_shards

#: Execution modes: ``"serial"`` ticks shards in-process (deterministic
#: reference, zero processes), ``"process"`` hosts each shard on its own
#: long-lived worker (the scale-out path).  Both produce identical
#: output — the merge path is shared.
SHARD_MODES = ("serial", "process")

# Counter/histogram help strings (shared so snapshots merge cleanly).
SHARD_TICKS_HELP = "shard tick slices dispatched"
SHARD_TICK_SECONDS_HELP = "wall time of one shard's tick slice"
SHARD_SNAPSHOTS_HELP = "shard states written to a snapshot"
SHARD_RESTORES_HELP = "shard states restored from a snapshot"


def shard_for(serial: str, n_shards: int) -> int:
    """The shard owning ``serial`` — a stable, platform-independent hash.

    CRC-32 of the UTF-8 serial modulo the shard count: deterministic
    across runs, interpreters and platforms (unlike ``hash()``, which
    is salted per process), independent of insertion order by
    construction, and balanced to within binomial noise for real-world
    serial populations (pinned by a hypothesis test from fleets of 10
    to 100k serials).
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(serial.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class VoterSpec:
    """A picklable detector factory for the built-in windowed voters.

    ``detector_factory`` is usually a lambda, which cannot cross a
    process boundary; a ``VoterSpec`` carries the same information as
    data.  Calling the spec builds a fresh detector, so it drops in
    anywhere a factory is expected (including plain ``FleetMonitor``).
    """

    kind: str  # "majority" | "mean"
    n_voters: int
    failed_label: float = -1.0
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("majority", "mean"):
            raise ValueError(
                f"kind must be 'majority' or 'mean', got {self.kind!r}"
            )

    def __call__(self):
        if self.kind == "majority":
            return OnlineMajorityVote(self.n_voters, failed_label=self.failed_label)
        return OnlineMeanThreshold(self.n_voters, threshold=self.threshold)


@dataclass(frozen=True)
class TreeSampleScorer:
    """Picklable ``row -> float`` scorer over a fitted tree.

    :meth:`~repro.tree.base.BaseDecisionTree.sample_scorer` returns a
    closure, which cannot ship to a shard worker; this wrapper scores
    identically and pickles whenever the tree does.
    """

    tree: object

    def __call__(self, row: np.ndarray) -> float:
        matrix = np.asarray(row, dtype=float).reshape(1, -1)
        return float(self.tree.predict(matrix)[0])


@dataclass(frozen=True)
class TreeBatchScorer:
    """Picklable batch scorer over a fitted tree (see :class:`TreeSampleScorer`)."""

    tree: object

    def __call__(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.tree.predict(np.asarray(X, dtype=float)), dtype=float)


@dataclass(frozen=True)
class CanaryPolicy:
    """When does a canary generation win the fleet?

    After :meth:`ShardedFleetMonitor.begin_deployment` the canary
    shards serve the candidate model for ``soak_ticks`` collection
    ticks while the control shards stay on the incumbent.  At the end
    of the soak the per-drive-tick alert rates of the two groups are
    compared: the candidate passes when
    ``|canary_rate - control_rate| <= max_alert_rate_delta`` — alert
    parity, the serving-side analogue of the paper's updating story
    (a new model should page like the old one before it owns the
    fleet).
    """

    soak_ticks: int = 24
    max_alert_rate_delta: float = 0.01

    def __post_init__(self) -> None:
        if self.soak_ticks < 1:
            raise ValueError(f"soak_ticks must be >= 1, got {self.soak_ticks}")


@dataclass
class ShardSpec:
    """Everything needed to build one shard monitor, as picklable data.

    The coordinator ships this (not a built monitor) to worker
    processes; ``mode="process"`` therefore needs every field to be
    picklable — use :class:`VoterSpec` and
    :class:`TreeSampleScorer`/:class:`TreeBatchScorer` instead of
    lambdas and closures.
    """

    features: tuple
    score_sample: Callable
    detector_factory: Callable
    score_batch: Optional[Callable] = None
    quarantine: Optional[QuarantinePolicy] = None
    tree: Optional[object] = None
    feature_names: Optional[tuple] = None
    model_generation: int = 0

    def build(self) -> FleetMonitor:
        """A fresh columnar shard monitor (SLO state stays coordinator-side)."""
        return FleetMonitor(
            self.features,
            score_sample=self.score_sample,
            detector_factory=self.detector_factory,
            score_batch=self.score_batch,
            quarantine=self.quarantine,
            tree=self.tree,
            feature_names=self.feature_names,
            model_generation=self.model_generation,
            slo=None,
            engine="columnar",
        )


@dataclass(frozen=True)
class _ShardBuilder:
    """Worker-side state constructor: spec in, hosted shard cell out."""

    spec: ShardSpec

    def __call__(self) -> dict:
        return {"monitor": self.spec.build(), "roster": None, "feed": None}


@dataclass(frozen=True)
class _PickledShard:
    """Worker-side state constructor for restored shards (snapshot blob in)."""

    blob: bytes

    def __call__(self) -> dict:
        state = pickle.loads(self.blob)
        return {
            "monitor": state["monitor"],
            "roster": state.get("roster"),
            "feed": None,
        }


@dataclass
class _Deployment:
    """In-flight canary rollout bookkeeping."""

    new_model: dict
    old_model: dict
    canaries: frozenset
    policy: CanaryPolicy
    generation: int
    ticks: int = 0
    canary_alerts: int = 0
    canary_drives: int = 0
    control_alerts: int = 0
    control_drives: int = 0


# -- shard-side entry points ---------------------------------------------------
#
# Module-level ``func(state, payload)`` callables, executed either
# in-process (serial mode, under capture_remote) or inside a WorkerHost
# (process mode).  ``state`` is the shard cell dict built by
# _ShardBuilder; everything they emit ships home in the envelope.


def _shard_tick(state: dict, payload: dict) -> dict:
    monitor: FleetMonitor = state["monitor"]
    hour = payload["hour"]
    shard = payload["shard"]
    registry = get_registry()
    n_faults = len(monitor.faults)
    start = perf_counter() if registry.enabled else 0.0
    if "matrix" in payload or payload.get("pinned"):
        roster = payload.get("roster")
        if roster is None:
            roster = state["roster"]
        matrix = payload.get("matrix")
        if matrix is None:
            matrix = state["feed"]
        with get_tracer().span(
            "shard.tick", category="shard", shard=shard, n_drives=len(roster)
        ):
            alerts = monitor.shard_tick(hour, None, None, roster=roster, matrix=matrix)
    else:
        items = payload["items"]
        duplicates = payload["duplicates"]
        with get_tracer().span(
            "shard.tick", category="shard", shard=shard, n_drives=len(items)
        ):
            if payload.get("single"):
                serial, values = items[0]
                alert = monitor.observe(serial, hour, values)
                alerts = [alert] if alert is not None else []
            else:
                alerts = monitor.shard_tick(hour, items, duplicates)
    registry.counter(
        "shard.ticks", help=SHARD_TICKS_HELP, shard=str(shard)
    ).inc()
    if registry.enabled:
        registry.histogram(
            "shard.tick_seconds", unit="seconds", help=SHARD_TICK_SECONDS_HELP,
        ).observe(perf_counter() - start)
    return {"alerts": alerts, "faults": monitor.faults[n_faults:]}


def _shard_finalize(state: dict, payload: object) -> dict:
    return {"alerts": state["monitor"].finalize(), "faults": []}


def _shard_pin(state: dict, payload: dict) -> int:
    if "roster" in payload:
        state["roster"] = tuple(payload["roster"])
    if "feed" in payload:
        state["feed"] = payload["feed"]
    return len(state["roster"]) if state["roster"] is not None else 0


def _shard_status(state: dict, payload: object) -> dict:
    monitor: FleetMonitor = state["monitor"]
    return {
        "n_watched": (
            monitor._columnar.n_watched()
            if monitor._columnar is not None
            else len(monitor._drives)
        ),
        "watched": monitor.watched_drives(),
        "degraded": monitor.degraded_drives(),
        "fault_counts": monitor.fault_counts(),
        "vote_flips": monitor.vote_flips,
    }


def _shard_drive_status(state: dict, serial: str) -> str:
    return state["monitor"].drive_status(serial).value


def _shard_apply_model(state: dict, payload: dict) -> int:
    """Swap a shard's model under full coordinator control.

    Deliberately *not* ``FleetMonitor.set_model``: generations are
    owned by the coordinator (canaries run ahead, rollbacks go back)
    and the lifecycle events (``model_replaced``, ``canary_*``) are
    emitted exactly once at the coordinator, never per shard.
    """
    monitor: FleetMonitor = state["monitor"]
    monitor.score_sample = payload["score_sample"]
    monitor.score_batch = payload["score_batch"]
    monitor.tree = payload["tree"]
    if payload.get("feature_names") is not None:
        monitor.feature_names = tuple(payload["feature_names"])
    monitor.model_generation = int(payload["generation"])
    return monitor.model_generation


def _shard_export(state: dict, payload: object) -> dict:
    """The picklable snapshot of one shard (pinned feeds are not state)."""
    return {"monitor": state["monitor"], "roster": state["roster"]}


class ShardedFleetMonitor:
    """N columnar shard monitors behind one ``FleetMonitor``-shaped facade.

    Args:
        features, score_sample, detector_factory, score_batch, tree,
        feature_names, model_generation: As
            :class:`~repro.detection.streaming.FleetMonitor`.  For
            ``mode="process"`` these must be picklable (see
            :class:`VoterSpec`, :class:`TreeSampleScorer`,
            :class:`TreeBatchScorer`).
        quarantine: The degraded-mode policy; required (strict mode is
            single-process only, see the module docs).
        slo: Optional coordinator-side
            :class:`~repro.observability.slo.SLOMonitor` fed by
            :meth:`resolve_outcome`.
        n_shards: Shard count; ``None`` defers to the ``REPRO_SHARDS``
            environment knob via
            :func:`~repro.utils.parallel.resolve_shards` (which also
            caps env-derived counts so shards x ``REPRO_N_JOBS`` never
            oversubscribes the machine).
        mode: ``"serial"`` (in-process shards, the deterministic
            reference) or ``"process"`` (one
            :class:`~repro.utils.parallel.WorkerHost` per shard).  An
            unpicklable spec degrades ``"process"`` to ``"serial"``
            under an :class:`~repro.utils.errors.UnpicklableTaskWarning`
            instead of failing.

    Example:
        >>> from repro.features.vectorize import Feature
        >>> monitor = ShardedFleetMonitor(
        ...     (Feature("POH"), Feature("TC")),
        ...     score_sample=lambda row: 1.0,
        ...     detector_factory=VoterSpec("majority", 3),
        ...     n_shards=2,
        ... )
        >>> import numpy as np
        >>> monitor.observe_fleet(0.0, [("d1", np.ones(12))])
        []
    """

    _DEFAULT_QUARANTINE = QuarantinePolicy()

    def __init__(
        self,
        features: Sequence[Feature],
        score_sample: Callable,
        detector_factory: Callable[[], object],
        *,
        score_batch: Optional[Callable] = None,
        quarantine: Optional[QuarantinePolicy] = _DEFAULT_QUARANTINE,
        tree: Optional[object] = None,
        feature_names: Optional[Sequence[str]] = None,
        model_generation: int = 0,
        slo: Optional[object] = None,
        n_shards: Optional[int] = None,
        mode: str = "serial",
    ):
        if quarantine is None:
            raise ValueError(
                "ShardedFleetMonitor requires a quarantine policy; strict "
                "mode (quarantine=None) is only supported by a single "
                "FleetMonitor"
            )
        if mode not in SHARD_MODES:
            raise ValueError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
        self._spec = ShardSpec(
            features=tuple(features),
            score_sample=score_sample,
            detector_factory=detector_factory,
            score_batch=score_batch,
            quarantine=quarantine,
            tree=tree,
            feature_names=tuple(feature_names) if feature_names is not None else None,
            model_generation=int(model_generation),
        )
        self.n_shards = resolve_shards(n_shards)
        self.quarantine = quarantine
        self.model_generation = int(model_generation)
        self.slo = slo
        self.alerts: list[Alert] = []
        self.faults: list[SampleFault] = []
        self._alerted_serials: set[str] = set()
        self._first_seen: list[str] = []
        self._seen: set[str] = set()
        self._last_hour: Optional[float] = None
        self._deployment: Optional[_Deployment] = None
        self.last_verdict: Optional[dict] = None
        self._current_model = {
            "score_sample": score_sample,
            "score_batch": score_batch,
            "tree": tree,
            "feature_names": self._spec.feature_names,
        }
        self._roster: Optional[tuple[str, ...]] = None
        self._partition: Optional[list[np.ndarray]] = None
        self._sub_rosters: Optional[list[tuple[str, ...]]] = None
        self._roster_noted = False
        self._feed_pinned = False
        self._quarantined: set[int] = set()
        if mode == "process":
            try:
                pickle.dumps(self._spec)
            except Exception as error:
                warnings.warn(
                    "shard spec cannot cross a process boundary "
                    f"({error!r}); running shards in-process instead",
                    UnpicklableTaskWarning,
                    stacklevel=2,
                )
                mode = "serial"
        self.mode = mode
        builder = _ShardBuilder(self._spec)
        if mode == "process":
            self._shards: Optional[list[dict]] = None
            self._hosts: Optional[list[WorkerHost]] = [
                WorkerHost(builder) for _ in range(self.n_shards)
            ]
        else:
            self._shards = [builder() for _ in range(self.n_shards)]
            self._hosts = None

    @classmethod
    def from_predictor(
        cls,
        predictor,
        detector_factory: Callable[[], object],
        **kwargs,
    ) -> "ShardedFleetMonitor":
        """Shard-serve a fitted pipeline's tree (picklable scorers built in).

        The process-mode counterpart of
        :meth:`FleetMonitor.from_predictor`: scoring goes through
        :class:`TreeSampleScorer`/:class:`TreeBatchScorer`, which ship
        to shard workers whenever the tree itself pickles.
        """
        tree = predictor.tree_
        if tree is None:
            raise RuntimeError("predictor is not fitted; call fit() first")
        return cls(
            predictor.extractor.features,
            score_sample=TreeSampleScorer(tree),
            detector_factory=detector_factory,
            score_batch=TreeBatchScorer(tree),
            tree=tree,
            **kwargs,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down shard workers (no-op in serial mode)."""
        if self._hosts is not None:
            for host in self._hosts:
                if host.alive:
                    host.close()

    def __enter__(self) -> "ShardedFleetMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch plumbing -----------------------------------------------------

    def _raw_dispatch(
        self, calls: list[tuple[int, Callable, object]]
    ) -> list[tuple[int, object]]:
        """Run ``func(state, payload)`` per shard; results in call order.

        Process mode submits every call before collecting any result,
        so shard slices execute concurrently; serial mode runs them
        in-process under :func:`~repro.observability.capture_remote`
        so both modes hand back the same envelope shape.

        A shard that dies mid-call (or was already dead at submit time)
        surfaces as a :class:`~repro.utils.errors.WorkerDiedError`
        routed through :meth:`_handle_shard_death` — which re-raises
        here, and recovers in the supervised subclass.  A handler may
        return ``None`` to mean "this shard has no result this call"
        (quarantine); every merge path tolerates the gap.
        """
        if self._hosts is not None:
            submitted: list[tuple[int, Callable, object, object]] = []
            for sid, func, payload in calls:
                try:
                    outcome: object = self._hosts[sid].submit(func, payload)
                except WorkerDiedError as error:
                    outcome = error
                submitted.append((sid, func, payload, outcome))
            responses: list[tuple[int, object]] = []
            for sid, func, payload, outcome in submitted:
                if isinstance(outcome, WorkerDiedError):
                    responses.append(
                        (sid, self._handle_shard_death(sid, func, payload, outcome))
                    )
                    continue
                try:
                    responses.append((sid, outcome.result()))
                except WorkerDiedError as error:
                    responses.append(
                        (sid, self._handle_shard_death(sid, func, payload, error))
                    )
            return responses
        config = worker_config()
        responses = []
        for sid, func, payload in calls:
            shard = self._shards[sid]
            if shard is None:
                error = WorkerDiedError(
                    f"shard {sid} is dead (killed in serial mode); restore "
                    f"it from a snapshot before dispatching more calls"
                )
                responses.append(
                    (sid, self._handle_shard_death(sid, func, payload, error))
                )
                continue
            responses.append((sid, capture_remote(config, func, shard, payload)))
        return responses

    def _handle_shard_death(
        self, sid: int, func: Callable, payload: object, error: WorkerDiedError
    ) -> object:
        """What to do when shard ``sid`` died under ``func(payload)``.

        The base coordinator has no recovery machinery, so the death is
        fatal: the error propagates and the operator restores by hand
        (:meth:`restore_shard`).  ``SupervisedShardedMonitor`` overrides
        this with snapshot-restore + journal-replay and returns the
        replacement result for the in-flight call.
        """
        raise error

    def _active_shards(self) -> list[int]:
        """Shard ids still serving (quarantined shards are excluded)."""
        return [
            sid for sid in range(self.n_shards) if sid not in self._quarantined
        ]

    def kill_shard(self, shard: int) -> None:
        """Kill one shard's worker without warning (chaos/testing hook).

        Process mode terminates the host's worker process; serial mode
        drops the in-process shard cell.  Either way the next dispatch
        to that shard raises :class:`~repro.utils.errors.WorkerDiedError`
        (or triggers supervised recovery).
        """
        if self._hosts is not None:
            self._hosts[shard].kill()
        else:
            self._shards[shard] = None

    def quarantine_shard(self, shard: int) -> None:
        """Permanently stop dispatching to one shard (degraded mode).

        The shard's drives stop being served and its worker is released;
        the hole is *reported* — ``health_report()['sharding']`` lists
        quarantined shards — but never paged.  This is the supervisor's
        last resort when a shard keeps flapping; the base class exposes
        it for operators who want to cut a shard loose by hand.
        """
        shard = int(shard)
        if shard in self._quarantined:
            return
        self._quarantined.add(shard)
        if self._hosts is not None:
            if self._hosts[shard].alive:
                self._hosts[shard].kill()
        else:
            self._shards[shard] = None
        get_event_log().emit(
            "shard_quarantined",
            hour=self._last_hour,
            shard=shard,
            n_shards=self.n_shards,
        )

    @property
    def quarantined_shards(self) -> list[int]:
        """Shard ids currently excluded from serving."""
        return sorted(self._quarantined)

    def _absorb(self, envelope: object, id_map: Optional[dict] = None) -> object:
        """Fold one shard envelope into the coordinator's instruments."""
        if not isinstance(envelope, RemoteObservation):
            return envelope
        if id_map and envelope.events:
            envelope.events = [
                self._rewrite_alert_id(event, id_map) for event in envelope.events
            ]
        return absorb_remote(envelope, parent_path=get_tracer().current_path())

    @staticmethod
    def _rewrite_alert_id(event, id_map: dict):
        if event.type != "alert_raised":
            return event
        renamed = id_map.get(event.data.get("alert_id"))
        if renamed is None:
            return event
        return replace(event, data={**event.data, "alert_id": renamed})

    def _note_seen(self, serial: str) -> None:
        if serial not in self._seen:
            self._seen.add(serial)
            self._first_seen.append(serial)

    # -- tick ingestion --------------------------------------------------------

    def observe(
        self, serial: str, hour: float, channel_values: Sequence[float]
    ) -> Optional[Alert]:
        """Ingest one record via its owning shard (see ``FleetMonitor.observe``)."""
        alerts = self._tick(hour, [(serial, channel_values)], [], single=True)
        return alerts[0] if alerts else None

    def observe_fleet(
        self,
        hour: float,
        records: Union[Mapping[str, Sequence[float]], Iterable[tuple]],
    ) -> list[Alert]:
        """Ingest one collection tick, fanned out across the shards.

        Semantics (normalization, duplicate-serial faults, alert order,
        alert ids) are exactly ``FleetMonitor.observe_fleet`` on a
        single columnar monitor — sharding is invisible in the result.
        """
        items, duplicates = _normalize_tick(records)
        return self._tick(hour, items, duplicates)

    def register_fleet(self, serials: Iterable[str]) -> tuple[str, ...]:
        """Fix the tick roster; partitions it and pins sub-rosters shard-side.

        Pinning resolves each shard's serial→row keying once (worker-
        resident in process mode), so repeated :meth:`observe_tick`
        calls ship only the matrix slices.  A roster with duplicate
        serials cannot be partitioned statically and falls back to the
        normalizing path per tick.
        """
        roster = tuple(serials)
        self._roster = roster
        self._roster_noted = False
        self._feed_pinned = False
        if len(set(roster)) != len(roster):
            self._partition = None
            self._sub_rosters = None
            return roster
        buckets: list[list[int]] = [[] for _ in range(self.n_shards)]
        for at, serial in enumerate(roster):
            buckets[shard_for(serial, self.n_shards)].append(at)
        self._partition = [np.asarray(ix, dtype=np.intp) for ix in buckets]
        self._sub_rosters = [
            tuple(roster[i] for i in ix) for ix in buckets
        ]
        calls = [
            (sid, _shard_pin, {"roster": self._sub_rosters[sid]})
            for sid in self._active_shards()
        ]
        for _, envelope in self._raw_dispatch(calls):
            self._absorb(envelope)
        return roster

    def pin_feed(self, values: np.ndarray) -> None:
        """Ship each shard its static slice of the fleet matrix, once.

        For stable fleets whose readings are generated or ingested
        shard-locally (and for throughput benchmarks): after pinning,
        ``observe_tick(hour)`` with no ``values`` ticks the worker-
        resident slice — the coordinator sends one float per shard per
        tick instead of re-serializing gigabytes of telemetry.
        """
        matrix = self._check_matrix(values)
        if self._partition is None:
            raise ValueError(
                "pin_feed needs a duplicate-free roster: call "
                "register_fleet() first"
            )
        calls = [
            (
                sid,
                _shard_pin,
                {
                    "roster": self._sub_rosters[sid],
                    "feed": matrix[self._partition[sid]],
                },
            )
            for sid in self._active_shards()
        ]
        for _, envelope in self._raw_dispatch(calls):
            self._absorb(envelope)
        self._feed_pinned = True

    def _check_matrix(self, values: np.ndarray) -> np.ndarray:
        if self._roster is None:
            raise ValueError(
                "no tick roster: pass serials= or call register_fleet() first"
            )
        matrix = np.ascontiguousarray(values, dtype=float)
        if matrix.shape != (len(self._roster), N_CHANNELS):
            raise ValueError(
                f"values must have shape ({len(self._roster)}, {N_CHANNELS}), "
                f"got {matrix.shape}"
            )
        return matrix

    def observe_tick(
        self,
        hour: float,
        values: Optional[np.ndarray] = None,
        serials: Optional[Sequence[str]] = None,
    ) -> list[Alert]:
        """Ingest one collection tick as a channel matrix (the array path).

        With ``values=None`` the shards tick their pinned feed (see
        :meth:`pin_feed`).  An explicit ``serials`` roster (or a
        registered roster with duplicates) takes the normalizing
        fallback path — correct, but re-partitioned per tick.
        """
        if serials is not None:
            roster = tuple(serials)
            if values is None:
                raise ValueError("values is required with an explicit roster")
            matrix = np.ascontiguousarray(values, dtype=float)
            if matrix.shape != (len(roster), N_CHANNELS):
                raise ValueError(
                    f"values must have shape ({len(roster)}, {N_CHANNELS}), "
                    f"got {matrix.shape}"
                )
            items, duplicates = _normalize_tick(zip(roster, matrix))
            return self._tick(hour, items, duplicates)
        if self._roster is None:
            raise ValueError(
                "no tick roster: pass serials= or call register_fleet() first"
            )
        if values is None and not self._feed_pinned:
            raise ValueError("no pinned feed: pass values= or call pin_feed() first")
        if self._partition is None:
            matrix = self._check_matrix(values)
            items, duplicates = _normalize_tick(zip(self._roster, matrix))
            return self._tick(hour, items, duplicates)
        matrix = self._check_matrix(values) if values is not None else None
        if not self._roster_noted:
            for serial in self._roster:
                self._note_seen(serial)
            self._roster_noted = True
        calls = []
        shard_sizes: dict[int, int] = {}
        for sid in self._active_shards():
            indices = self._partition[sid]
            if len(indices) == 0:
                continue
            payload: dict = {"hour": hour, "shard": sid}
            if matrix is not None:
                payload["matrix"] = matrix[indices]
            else:
                payload["pinned"] = True
            shard_sizes[sid] = len(indices)
            calls.append((sid, _shard_tick, payload))
        pos = {serial: at for at, serial in enumerate(self._roster)}
        return self._instrumented_tick(
            hour, len(self._roster), calls, pos, [], [], shard_sizes
        )

    def _tick(
        self,
        hour: float,
        items: list[tuple],
        duplicates: list[str],
        single: bool = False,
    ) -> list[Alert]:
        n = self.n_shards
        per_items: list[list[tuple]] = [[] for _ in range(n)]
        per_dups: list[list[str]] = [[] for _ in range(n)]
        pos: dict[str, int] = {}
        for at, (serial, values) in enumerate(items):
            pos[serial] = at
            per_items[shard_for(serial, n)].append((serial, values))
        for serial in duplicates:
            per_dups[shard_for(serial, n)].append(serial)
        # First-seen bookkeeping mirrors the columnar engine's row
        # allocation: duplicate occurrences register before the items.
        for serial in duplicates:
            self._note_seen(serial)
        for serial, _ in items:
            self._note_seen(serial)
        calls = []
        shard_sizes: dict[int, int] = {}
        dup_counts: dict[int, int] = {}
        for sid in self._active_shards():
            if not per_items[sid] and not per_dups[sid]:
                continue
            shard_sizes[sid] = len(per_items[sid])
            dup_counts[sid] = len(per_dups[sid])
            calls.append(
                (
                    sid,
                    _shard_tick,
                    {
                        "hour": hour,
                        "shard": sid,
                        "items": per_items[sid],
                        "duplicates": per_dups[sid],
                        "single": single,
                    },
                )
            )
        if single:
            responses = self._raw_dispatch(calls)
            self._last_hour = float(hour) if np.isfinite(hour) else self._last_hour
            return self._merge_tick(responses, pos, duplicates, items, dup_counts)
        return self._instrumented_tick(
            hour, len(items), calls, pos, duplicates, items, shard_sizes, dup_counts
        )

    def _instrumented_tick(
        self,
        hour: float,
        n_drives: int,
        calls: list,
        pos: dict[str, int],
        duplicates: list[str],
        items: list[tuple],
        shard_sizes: dict[int, int],
        dup_counts: Optional[dict[int, int]] = None,
    ) -> list[Alert]:
        """Coordinator-level tick instrumentation (the single-monitor shape).

        ``serve.fleet_ticks``, the ``serve.tick`` span and
        ``serve.tick_seconds`` are emitted here exactly once per
        logical tick — never per shard — so the merged registry equals
        a single monitor's.
        """
        registry = get_registry()
        start = perf_counter() if registry.enabled else 0.0
        with get_tracer().span("serve.tick", category="serve", n_drives=n_drives):
            responses = self._raw_dispatch(calls)
            alerts = self._merge_tick(
                responses, pos, duplicates, items, dup_counts or {},
                shard_sizes=shard_sizes,
            )
        registry.counter("serve.fleet_ticks", help="collection ticks").inc()
        if registry.enabled:
            registry.histogram(
                "serve.tick_seconds", unit="seconds",
                help="collection tick wall time",
            ).observe(perf_counter() - start)
        self._last_hour = float(hour) if np.isfinite(hour) else self._last_hour
        self._maybe_resolve_deployment()
        return alerts

    def _merge_tick(
        self,
        responses: list[tuple[int, object]],
        pos: dict[str, int],
        duplicates: list[str],
        items: list[tuple],
        dup_counts: dict[int, int],
        *,
        shard_sizes: Optional[dict[int, int]] = None,
    ) -> list[Alert]:
        results: dict[int, dict] = {}
        envelopes: list[tuple[int, RemoteObservation]] = []
        for sid, envelope in responses:
            if envelope is None:
                # Quarantined mid-call: the shard has no result this
                # tick; its drives go unserved, never unreported.
                continue
            if isinstance(envelope, RemoteObservation):
                results[sid] = envelope.result
                envelopes.append((sid, envelope))
            else:
                results[sid] = envelope

        # Alerts: shard-local ids -> dense coordinator ids, in the
        # tick's global record order (bit-identical to one monitor).
        tick_alerts: list[tuple[int, int, Alert]] = []
        for sid in sorted(results):
            for alert in results[sid]["alerts"]:
                tick_alerts.append((pos[alert.serial], sid, alert))
        tick_alerts.sort(key=lambda entry: entry[0])
        id_maps: dict[int, dict] = {sid: {} for sid in results}
        merged: list[Alert] = []
        for _, sid, alert in tick_alerts:
            renamed = replace(alert, alert_id=f"alert-{len(self.alerts):04d}")
            id_maps[sid][alert.alert_id] = renamed.alert_id
            self.alerts.append(renamed)
            self._alerted_serials.add(renamed.serial)
            merged.append(renamed)

        # Faults: duplicate-serial faults in global discovery order,
        # then record faults in global record order.
        dup_queues: dict[int, deque] = {}
        record_faults: dict[int, dict[str, SampleFault]] = {}
        for sid, result in results.items():
            k = dup_counts.get(sid, 0)
            dup_queues[sid] = deque(result["faults"][:k])
            record_faults[sid] = {fault.serial: fault for fault in result["faults"][k:]}
        for serial in duplicates:
            queue = dup_queues.get(shard_for(serial, self.n_shards))
            if queue:
                self.faults.append(queue.popleft())
        for serial, _ in items:
            fault = record_faults.get(shard_for(serial, self.n_shards), {}).pop(
                serial, None
            )
            if fault is not None:
                self.faults.append(fault)
        if not items and shard_sizes:
            # Matrix path: records cannot fault by serial lookup order
            # ambiguity (roster is duplicate-free), so any shard faults
            # merge in roster order via the pos map.
            leftovers = [
                (pos[fault.serial], fault)
                for sid in sorted(record_faults)
                for fault in record_faults[sid].values()
            ]
            for _, fault in sorted(leftovers, key=lambda entry: entry[0]):
                self.faults.append(fault)

        # Observability: absorb envelopes in shard-id order with the
        # alert ids rewritten, so the merged event stream is ordered by
        # (logical hour, shard id, shard-local seq) and names the
        # coordinator's alerts.
        for sid, envelope in envelopes:
            self._absorb(envelope, id_maps.get(sid))

        # Canary soak accounting.
        deployment = self._deployment
        if deployment is not None and shard_sizes is not None:
            for sid, size in shard_sizes.items():
                if sid in deployment.canaries:
                    deployment.canary_drives += size
                else:
                    deployment.control_drives += size
            for _, sid, _alert in tick_alerts:
                if sid in deployment.canaries:
                    deployment.canary_alerts += 1
                else:
                    deployment.control_alerts += 1
            deployment.ticks += 1
        return merged

    def finalize(self) -> list[Alert]:
        """Short-history flush, merged in global first-seen order."""
        calls = [(sid, _shard_finalize, None) for sid in self._active_shards()]
        responses = self._raw_dispatch(calls)
        found: dict[str, tuple[int, Alert]] = {}
        envelopes: list[tuple[int, RemoteObservation]] = []
        for sid, envelope in responses:
            if envelope is None:
                continue
            if isinstance(envelope, RemoteObservation):
                result = envelope.result
                envelopes.append((sid, envelope))
            else:
                result = envelope
            for alert in result["alerts"]:
                found[alert.serial] = (sid, alert)
        id_maps: dict[int, dict] = {sid: {} for sid in range(self.n_shards)}
        merged: list[Alert] = []
        for serial in self._first_seen:
            entry = found.get(serial)
            if entry is None:
                continue
            sid, alert = entry
            renamed = replace(alert, alert_id=f"alert-{len(self.alerts):04d}")
            id_maps[sid][alert.alert_id] = renamed.alert_id
            self.alerts.append(renamed)
            self._alerted_serials.add(serial)
            merged.append(renamed)
        for sid, envelope in envelopes:
            self._absorb(envelope, id_maps.get(sid))
        return merged

    # -- model lifecycle and rolling deployment --------------------------------

    def set_model(
        self,
        score_sample: Callable,
        *,
        score_batch: Optional[Callable] = None,
        tree: Optional[object] = None,
        feature_names: Optional[Sequence[str]] = None,
    ) -> int:
        """Swap the serving model on every shard; returns the new generation.

        Emits exactly one ``model_replaced`` event (at the coordinator),
        like :meth:`FleetMonitor.set_model` on a single monitor.
        """
        if self._deployment is not None:
            raise RuntimeError(
                "a canary deployment is in flight; let it resolve (or "
                "restore from a snapshot) before swapping models directly"
            )
        model = {
            "score_sample": score_sample,
            "score_batch": score_batch,
            "tree": tree,
            "feature_names": tuple(feature_names) if feature_names is not None else None,
        }
        generation = self.model_generation + 1
        self._apply_model(range(self.n_shards), model, generation)
        previous = self.model_generation
        self.model_generation = generation
        self._current_model = model
        get_event_log().emit(
            "model_replaced",
            from_generation=previous,
            to_generation=generation,
        )
        return generation

    def _apply_model(
        self, shards: Iterable[int], model: dict, generation: int
    ) -> None:
        payload = {**model, "generation": generation}
        calls = [
            (sid, _shard_apply_model, payload)
            for sid in sorted(shards)
            if sid not in self._quarantined
        ]
        for _, envelope in self._raw_dispatch(calls):
            self._absorb(envelope)

    def begin_deployment(
        self,
        score_sample: Callable,
        *,
        canary_shards: Sequence[int] = (0,),
        policy: CanaryPolicy = CanaryPolicy(),
        score_batch: Optional[Callable] = None,
        tree: Optional[object] = None,
        feature_names: Optional[Sequence[str]] = None,
    ) -> int:
        """Start a rolling deployment: canary shards serve the candidate.

        The canaries switch to generation ``current + 1`` immediately;
        the control shards keep serving the incumbent.  For the next
        ``policy.soak_ticks`` collection ticks the coordinator compares
        alert rates between the two groups, then resolves the rollout
        automatically: parity within ``policy.max_alert_rate_delta``
        cuts the whole fleet over (``fleet_cutover``), anything else
        rolls the canaries back (``fleet_rollback``).  Returns the
        candidate generation.
        """
        if self._deployment is not None:
            raise RuntimeError("a canary deployment is already in flight")
        canaries = frozenset(int(sid) for sid in canary_shards)
        if not canaries:
            raise ValueError("canary_shards must name at least one shard")
        if not canaries.issubset(range(self.n_shards)):
            raise ValueError(
                f"canary_shards {sorted(canaries)} outside 0..{self.n_shards - 1}"
            )
        if len(canaries) == self.n_shards:
            raise ValueError(
                "canary_shards covers every shard; a deployment needs a "
                "control group to compare against"
            )
        new_model = {
            "score_sample": score_sample,
            "score_batch": score_batch,
            "tree": tree,
            "feature_names": tuple(feature_names) if feature_names is not None else None,
        }
        generation = self.model_generation + 1
        self._apply_model(canaries, new_model, generation)
        self._deployment = _Deployment(
            new_model=new_model,
            old_model=dict(self._current_model),
            canaries=canaries,
            policy=policy,
            generation=generation,
        )
        get_event_log().emit(
            "canary_started",
            hour=self._last_hour,
            generation=generation,
            canary_shards=sorted(canaries),
            soak_ticks=policy.soak_ticks,
        )
        return generation

    def _maybe_resolve_deployment(self) -> None:
        deployment = self._deployment
        if deployment is None or deployment.ticks < deployment.policy.soak_ticks:
            return
        canary_rate = (
            deployment.canary_alerts / deployment.canary_drives
            if deployment.canary_drives
            else 0.0
        )
        control_rate = (
            deployment.control_alerts / deployment.control_drives
            if deployment.control_drives
            else 0.0
        )
        passed = bool(
            abs(canary_rate - control_rate)
            <= deployment.policy.max_alert_rate_delta
        )
        log = get_event_log()
        log.emit(
            "canary_verdict",
            hour=self._last_hour,
            generation=deployment.generation,
            passed=passed,
            canary_alert_rate=round(canary_rate, 9),
            control_alert_rate=round(control_rate, 9),
            soak_ticks=deployment.policy.soak_ticks,
        )
        if passed:
            controls = set(range(self.n_shards)) - deployment.canaries
            self._apply_model(controls, deployment.new_model, deployment.generation)
            previous = self.model_generation
            self.model_generation = deployment.generation
            self._current_model = deployment.new_model
            log.emit(
                "fleet_cutover",
                hour=self._last_hour,
                from_generation=previous,
                to_generation=deployment.generation,
                canary_shards=sorted(deployment.canaries),
            )
        else:
            self._apply_model(
                deployment.canaries, deployment.old_model, self.model_generation
            )
            log.emit(
                "fleet_rollback",
                hour=self._last_hour,
                from_generation=deployment.generation,
                to_generation=self.model_generation,
                canary_shards=sorted(deployment.canaries),
            )
        self.last_verdict = {
            "passed": passed,
            "generation": deployment.generation,
            "canary_alert_rate": canary_rate,
            "control_alert_rate": control_rate,
        }
        self._deployment = None

    @property
    def deployment_active(self) -> bool:
        """Whether a canary rollout is currently soaking."""
        return self._deployment is not None

    # -- snapshot / restore ----------------------------------------------------

    def _export_shard(self, shard: int) -> dict:
        if shard in self._quarantined:
            raise WorkerDiedError(
                f"shard {shard} is quarantined; it has no state to export"
            )
        if self._hosts is not None:
            return self._absorb(self._hosts[shard].call(_shard_export))
        cell = self._shards[shard]
        if cell is None:
            raise WorkerDiedError(
                f"shard {shard} is dead (killed in serial mode); restore it "
                f"before snapshotting"
            )
        return _shard_export(cell, None)

    def _coordinator_state(self) -> dict:
        return {
            "spec": self._spec,
            "mode": self.mode,
            "n_shards": self.n_shards,
            "alerts": self.alerts,
            "faults": self.faults,
            "first_seen": self._first_seen,
            "alerted_serials": self._alerted_serials,
            "model_generation": self.model_generation,
            "current_model": self._current_model,
            "slo": self.slo,
            "last_hour": self._last_hour,
            "deployment": self._deployment,
            "last_verdict": self.last_verdict,
            "quarantined": sorted(self._quarantined),
        }

    def _open_store(
        self, store: Union[str, Path, JsonCheckpoint]
    ) -> JsonCheckpoint:
        if isinstance(store, JsonCheckpoint):
            return store
        return JsonCheckpoint(store, kind=SHARD_SNAPSHOT_KIND)

    def snapshot_shard(
        self, shard: int, store: Union[str, Path, JsonCheckpoint]
    ) -> JsonCheckpoint:
        """Persist one shard's full state into a ``shard-snapshot`` checkpoint."""
        store = self._open_store(store)
        state = self._export_shard(shard)
        store.set(f"shard-{shard}", encode_object(state))
        get_registry().counter(
            "shard.snapshots", help=SHARD_SNAPSHOTS_HELP
        ).inc()
        monitor: FleetMonitor = state["monitor"]
        get_event_log().emit(
            "shard_snapshot",
            hour=self._last_hour,
            shard=shard,
            n_drives=len(monitor.watched_drives()),
        )
        return store

    def snapshot(self, store: Union[str, Path, JsonCheckpoint]) -> JsonCheckpoint:
        """Persist every shard plus the coordinator state, atomically per cell.

        The written checkpoint restores to a monitor that is
        bit-identical mid-stream: same alerts/faults/events-to-come,
        same voting windows, same SLO state.  Pinned feeds
        (:meth:`pin_feed`) are transient and must be re-pinned.
        """
        store = self._open_store(store)
        for shard in self._active_shards():
            self.snapshot_shard(shard, store)
        store.set("coordinator", encode_object(self._coordinator_state()))
        return store

    def restore_shard(
        self, shard: int, store: Union[str, Path, JsonCheckpoint]
    ) -> None:
        """Replace one shard's state from a snapshot (kill-and-resume).

        In process mode a dead host (see
        :meth:`~repro.utils.parallel.WorkerHost.kill`) is replaced by a
        fresh worker whose state is rebuilt from the snapshot blob —
        the resumed shard continues the stream bit-identically from
        the snapshot point.
        """
        store = self._open_store(store)
        cell = store.get(f"shard-{shard}")
        if cell is None:
            raise KeyError(f"snapshot has no cell for shard {shard}")
        state = decode_object(cell)
        if self._hosts is not None:
            old = self._hosts[shard]
            if old.alive:
                old.kill()
            self._hosts[shard] = WorkerHost(
                _PickledShard(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
            )
        else:
            self._shards[shard] = {
                "monitor": state["monitor"],
                "roster": state.get("roster"),
                "feed": None,
            }
        self._quarantined.discard(shard)
        # The snapshot's roster may predate the coordinator's current
        # registration; re-pin the live sub-roster so the matrix path
        # keys rows correctly on the restored shard.  Feeds are
        # transient on *every* shard-side cell, so one lost feed
        # invalidates the fleet-wide pin — callers re-pin via pin_feed.
        if self._sub_rosters is not None:
            for _, envelope in self._raw_dispatch(
                [(shard, _shard_pin, {"roster": self._sub_rosters[shard]})]
            ):
                self._absorb(envelope)
        self._feed_pinned = False
        get_registry().counter(
            "shard.restores", help=SHARD_RESTORES_HELP
        ).inc()
        monitor: FleetMonitor = state["monitor"]
        get_event_log().emit(
            "shard_restored",
            hour=self._last_hour,
            shard=shard,
            n_drives=len(monitor.watched_drives()),
        )

    @classmethod
    def restore(
        cls,
        store: Union[str, Path, JsonCheckpoint],
        *,
        mode: Optional[str] = None,
    ) -> "ShardedFleetMonitor":
        """Rebuild a whole coordinator (and all shards) from a snapshot.

        ``mode`` overrides the snapshotted execution mode — a snapshot
        taken from a process-mode fleet restores fine into serial mode
        and vice versa; the serving state is mode-independent.
        """
        if not isinstance(store, JsonCheckpoint):
            store = JsonCheckpoint(store, kind=SHARD_SNAPSHOT_KIND)
        cell = store.get("coordinator")
        if cell is None:
            raise KeyError("snapshot has no coordinator cell")
        coord = decode_object(cell)
        spec: ShardSpec = coord["spec"]
        self = cls(
            spec.features,
            spec.score_sample,
            spec.detector_factory,
            score_batch=spec.score_batch,
            quarantine=spec.quarantine,
            tree=spec.tree,
            feature_names=spec.feature_names,
            model_generation=spec.model_generation,
            slo=coord["slo"],
            n_shards=coord["n_shards"],
            mode=mode if mode is not None else coord["mode"],
        )
        self.alerts = coord["alerts"]
        self.faults = coord["faults"]
        self._first_seen = coord["first_seen"]
        self._seen = set(self._first_seen)
        self._alerted_serials = coord["alerted_serials"]
        self.model_generation = coord["model_generation"]
        self._current_model = coord["current_model"]
        self._last_hour = coord["last_hour"]
        self._deployment = coord["deployment"]
        self.last_verdict = coord["last_verdict"]
        quarantined = set(coord.get("quarantined", ()))
        for shard in range(self.n_shards):
            if shard in quarantined:
                # The shard was cut loose before the snapshot; there is
                # no cell to restore and it stays out of the rotation.
                if self._hosts is not None:
                    self._hosts[shard].kill()
                else:
                    self._shards[shard] = None
                self._quarantined.add(shard)
                continue
            self.restore_shard(shard, store)
        return self

    # -- ground truth and SLO --------------------------------------------------

    def resolve_outcome(
        self,
        serial: str,
        failed: bool,
        *,
        hour: Optional[float] = None,
        failure_hour: Optional[float] = None,
    ) -> str:
        """Record ground truth for a drive (see ``FleetMonitor.resolve_outcome``).

        Outcomes resolve against the coordinator's merged alert list
        and feed the coordinator-side SLO monitor — shards never see
        ground truth.
        """
        alerted = serial in self._alerted_serials
        if failed:
            outcome = "detected" if alerted else "missed"
        else:
            outcome = "false_alarm" if alerted else "good"
        alert = next((a for a in self.alerts if a.serial == serial), None)
        lead_hours: Optional[float] = None
        if (
            outcome == "detected" and alert is not None
            and failure_hour is not None and np.isfinite(alert.hour)
        ):
            lead_hours = float(failure_hour) - float(alert.hour)
        if hour is None:
            if failure_hour is not None:
                hour = failure_hour
            elif alert is not None and np.isfinite(alert.hour):
                hour = alert.hour
            else:
                hour = 0.0
        get_event_log().emit(
            "outcome_resolved", drive=serial, hour=hour,
            outcome=outcome,
            **({"alert_id": alert.alert_id}
               if alert is not None and alert.alert_id else {}),
            **({"lead_hours": lead_hours} if lead_hours is not None else {}),
        )
        if self.slo is not None:
            self.slo.record(float(hour), outcome, lead_hours=lead_hours, drive=serial)
        return outcome

    # -- reporting -------------------------------------------------------------

    #: What a quarantined shard reports: nothing is served, nothing is
    #: counted — the hole shows up in the topology section instead.
    _QUARANTINED_STATUS = {
        "n_watched": 0,
        "watched": [],
        "degraded": [],
        "fault_counts": {},
        "vote_flips": 0,
    }

    def _statuses(self) -> list[dict]:
        calls = [(sid, _shard_status, None) for sid in self._active_shards()]
        by_sid = {
            sid: self._absorb(envelope)
            for sid, envelope in self._raw_dispatch(calls)
        }
        return [
            by_sid.get(sid) or dict(self._QUARANTINED_STATUS)
            for sid in range(self.n_shards)
        ]

    @property
    def vote_flips(self) -> int:
        """Fleet-total alarm-signal transitions (summed over shards)."""
        return sum(status["vote_flips"] for status in self._statuses())

    def watched_drives(self) -> list[str]:
        """Serials currently tracked, fleet-wide."""
        serials: list[str] = []
        for status in self._statuses():
            serials.extend(status["watched"])
        return sorted(serials)

    def degraded_drives(self) -> list[str]:
        """Serials currently quarantined, fleet-wide."""
        serials: list[str] = []
        for status in self._statuses():
            serials.extend(status["degraded"])
        return sorted(serials)

    def fault_counts(self) -> dict[str, int]:
        """Per-drive count of quarantined ticks, fleet-wide."""
        counts: dict[str, int] = {}
        for status in self._statuses():
            counts.update(status["fault_counts"])
        return dict(sorted(counts.items()))

    def drive_status(self, serial: str) -> DriveStatus:
        """Serving status of one drive (resolved on its owning shard)."""
        sid = shard_for(serial, self.n_shards)
        if sid in self._quarantined or (
            self._shards is not None and self._shards[sid] is None
        ):
            raise WorkerDiedError(
                f"drive {serial!r} lives on shard {sid}, which is "
                f"{'quarantined' if sid in self._quarantined else 'dead'}"
            )
        if self._hosts is not None:
            value = self._absorb(self._hosts[sid].call(_shard_drive_status, serial))
        else:
            value = capture_remote(
                worker_config(), _shard_drive_status, self._shards[sid], serial
            )
            value = self._absorb(value)
        return DriveStatus(value)

    def health_report(self) -> dict[str, object]:
        """One-call fleet summary, shaped exactly like a single monitor's.

        Every shared key (schema, counters, degraded list, SLO status,
        ``serve.*`` metrics) is bit-identical to the report a single
        columnar ``FleetMonitor`` would produce on the same stream; the
        extra ``"sharding"`` section describes the deployment topology.
        """
        statuses = self._statuses()
        kinds: dict[str, int] = {}
        for fault in self.faults:
            kinds[fault.kind.value] = kinds.get(fault.kind.value, 0) + 1
        degraded: list[str] = []
        for status in statuses:
            degraded.extend(status["degraded"])
        snapshot = get_registry().snapshot()
        report: dict[str, object] = {
            "schema": HEALTH_REPORT_SCHEMA,
            "watched_drives": sum(status["n_watched"] for status in statuses),
            "alerts": len(self.alerts),
            "faults_total": len(self.faults),
            "faults_by_kind": kinds,
            "degraded_drives": sorted(degraded),
            "vote_flips": sum(status["vote_flips"] for status in statuses),
            "model_generation": self.model_generation,
            "metrics": {
                name: entry
                for name, entry in snapshot["metrics"].items()
                if name.startswith("serve.")
            },
        }
        if self.slo is not None:
            report["slo"] = self.slo.status()
        report["sharding"] = {
            "n_shards": self.n_shards,
            "mode": self.mode,
            "shard_drives": [status["n_watched"] for status in statuses],
            "quarantined_shards": sorted(self._quarantined),
        }
        return report
