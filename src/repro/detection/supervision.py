"""Self-healing sharded serving: supervisor, tick journal, recovery.

A :class:`~repro.detection.sharded.ShardedFleetMonitor` scales the
paper's detection loop out to millions of drives — and inherits the
failure modes of the machines it runs on.  A shard worker SIGKILLed by
the OOM reaper (or a chaos test) takes its voting windows, lag
histories and quarantine counters with it; without this module the
stream stops until an operator notices and calls ``restore_shard`` by
hand, and every tick since the last snapshot is silently gone.

:class:`SupervisedShardedMonitor` closes that gap with three pieces:

* **Liveness** — before every collection tick the coordinator polls
  each shard host's worker process
  (:meth:`~repro.utils.parallel.WorkerHost.poll`), so a killed shard is
  *detected* at the next tick rather than discovered via a broken pipe
  mid-dispatch.  Deaths during a dispatch surface as
  :class:`~repro.utils.errors.WorkerDiedError` and are handled at the
  same place.
* **Write-ahead tick journal** — :class:`TickJournal` records every
  tick payload (and the roster/feed context it depends on) *before* it
  is dispatched: schema-tagged JSONL (``repro.tick-journal/v1``) with
  ``.npy`` sidecars for matrices, fsync'd per append, torn-tail
  tolerant on read.  Periodic snapshots through
  :class:`~repro.utils.checkpoint.JsonCheckpoint` truncate it, so the
  journal only ever holds the ticks since the last snapshot.
* **Recovery** — on a dead shard the supervisor respawns a fresh
  worker from the latest snapshot (or from the shard spec when none
  exists yet) and deterministically replays the journaled ticks for
  that shard, with observability suppressed so nothing is
  double-counted.  Because the coordinator itself never died, its
  merged alerts/faults/events already include every completed tick;
  replay only rebuilds *shard-side* state — and the result is
  bit-identical to a never-crashed run (the golden-parity bar the
  sharded and columnar engines already meet).  A tick that was
  in flight when the shard died is excluded from replay and re-submitted
  through the normal merge path instead.

Restarts are budgeted: :class:`RestartPolicy` allows ``max_restarts``
respawns per shard within a sliding ``window_ticks`` window.  A shard
that keeps flapping past the budget is **quarantined** — dropped from
the serving rotation, visible in ``health_report()`` and the
``shard_quarantined`` event, and never the source of another page.

Everything is observable: ``shard_died`` / ``shard_recovered`` /
``shard_quarantined`` events, ``shard.recoveries`` and
``shard.journal_replayed_ticks`` counters, and a ``"supervision"``
section in :meth:`SupervisedShardedMonitor.health_report`.  See
``docs/operations.md`` for the recovery runbook.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.detection.sharded import (
    ShardedFleetMonitor,
    _ShardBuilder,
    _shard_pin,
    _shard_tick,
    shard_for,
)
from repro.detection.streaming import _normalize_tick
from repro.observability import (
    capture_remote,
    get_event_log,
    get_registry,
    worker_config,
)
from repro.utils.checkpoint import SHARD_SNAPSHOT_KIND, JsonCheckpoint
from repro.utils.errors import TornEventLogWarning, WorkerDiedError
from repro.utils.parallel import WorkerHost

#: Schema tag on the journal's JSONL header line.
TICK_JOURNAL_SCHEMA = "repro.tick-journal/v1"

SHARD_RECOVERIES_HELP = "shard workers respawned after an unexpected death"
SHARD_REPLAYED_HELP = "journaled tick slices replayed into recovered shards"


@dataclass(frozen=True)
class RestartPolicy:
    """How many respawns a flapping shard gets before quarantine.

    ``max_restarts`` deaths within any sliding window of
    ``window_ticks`` collection ticks are recovered automatically; the
    next death inside the window quarantines the shard instead — it is
    degraded-but-reported, never an endless respawn loop and never a
    page.  Old restarts age out of the window, so a shard that crashed
    twice last week still has its full budget today.
    """

    max_restarts: int = 3
    window_ticks: int = 24

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {self.max_restarts}"
            )
        if self.window_ticks < 1:
            raise ValueError(
                f"window_ticks must be >= 1, got {self.window_ticks}"
            )


class TickJournal:
    """Append-only write-ahead log of everything a shard needs to replay.

    One JSONL file (header line ``{"schema": "repro.tick-journal/v1"}``)
    plus a ``<path>.d/`` sidecar directory holding matrices as ``.npy``
    files.  Entry kinds:

    * ``register`` — a tick roster was fixed (the serial list, inline);
    * ``pin`` — a fleet feed matrix was pinned (sidecar);
    * ``tick`` — one collection tick: ``mode="matrix"`` carries the full
      fleet matrix as a sidecar (or ``pinned: true`` for pinned-feed
      ticks), ``mode="fleet"`` carries the normalized
      ``(items, duplicates)`` payload as a base64 pickle inline.

    Durability contract (``fsync=True``, the default): a sidecar is
    written and fsync'd *before* the line referencing it, and each line
    is fsync'd after the write — so a crash at any instant leaves either
    a complete entry or a torn final line, never a line pointing at
    missing bytes.  :meth:`entries` drops a torn tail under a
    :class:`~repro.utils.errors.TornEventLogWarning`; corruption before
    the final line raises.

    The journal is per-run: construction truncates ``path``.  After a
    snapshot, :meth:`reset` truncates again and re-seeds the roster/pin
    context entries the post-snapshot ticks depend on.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = True):
        self.path = Path(path)
        self.sidecar_dir = Path(str(self.path) + ".d")
        self._fsync = bool(fsync)
        self._seq = 0
        self.tick_count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sidecar_dir.mkdir(parents=True, exist_ok=True)
        for stale in self.sidecar_dir.glob("*.npy"):
            stale.unlink()
        self._handle = self.path.open("w")
        self._write_line({"schema": TICK_JOURNAL_SCHEMA})

    def _write_line(self, line: dict) -> None:
        self._handle.write(json.dumps(line, separators=(", ", ": ")) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def _write_sidecar(self, matrix: np.ndarray) -> str:
        name = f"{self._seq:06d}.npy"
        self._seq += 1
        target = self.sidecar_dir / name
        with target.open("wb") as handle:
            np.save(handle, np.ascontiguousarray(matrix))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        return name

    # -- appends ---------------------------------------------------------------

    def append_register(
        self, roster_id: int, roster: Sequence[str]
    ) -> None:
        """Record a roster registration (context for later matrix ticks)."""
        self._write_line({
            "kind": "register",
            "roster_id": int(roster_id),
            "roster": list(roster),
        })

    def append_pin(self, roster_id: int, matrix: np.ndarray) -> None:
        """Record a pinned fleet feed (context for ``pinned`` ticks)."""
        sidecar = self._write_sidecar(matrix)
        self._write_line({
            "kind": "pin", "roster_id": int(roster_id), "sidecar": sidecar,
        })

    def append_tick_matrix(
        self,
        hour: float,
        roster_id: int,
        *,
        matrix: Optional[np.ndarray] = None,
        pinned: bool = False,
    ) -> None:
        """Record one matrix-path tick, sidecar first (write-ahead order)."""
        line: dict = {
            "kind": "tick", "mode": "matrix",
            "hour": float(hour), "roster_id": int(roster_id),
        }
        if pinned:
            line["pinned"] = True
        else:
            line["sidecar"] = self._write_sidecar(matrix)
        self._write_line(line)
        self.tick_count += 1

    def append_tick_fleet(
        self, hour: float, items: list, duplicates: list, single: bool = False
    ) -> None:
        """Record one normalized fleet tick (items inline, pickled)."""
        blob = base64.b64encode(
            pickle.dumps(
                (items, duplicates), protocol=pickle.HIGHEST_PROTOCOL
            )
        ).decode("ascii")
        line: dict = {
            "kind": "tick", "mode": "fleet", "hour": float(hour), "blob": blob,
        }
        if single:
            line["single"] = True
        self._write_line(line)
        self.tick_count += 1

    # -- reads -----------------------------------------------------------------

    def _load_entry(self, line: dict) -> dict:
        entry = dict(line)
        if "sidecar" in entry:
            entry["matrix"] = np.load(self.sidecar_dir / entry["sidecar"])
        if "blob" in entry:
            items, duplicates = pickle.loads(base64.b64decode(entry["blob"]))
            entry["items"] = items
            entry["duplicates"] = duplicates
        return entry

    def entries(self, *, tolerant: bool = True) -> list[dict]:
        """Every journal entry with payloads loaded, in append order.

        ``tolerant=True`` (the default — this *is* the crash-recovery
        read) drops a torn final line with a
        :class:`~repro.utils.errors.TornEventLogWarning`; corruption
        before the final line always raises.
        """
        raw_lines: list[tuple[int, str]] = []
        with self.path.open() as handle:
            for number, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if raw:
                    raw_lines.append((number, raw))
        loaded: list[dict] = []
        header_seen = False
        for at, (number, raw) in enumerate(raw_lines):
            last = at == len(raw_lines) - 1
            try:
                line = json.loads(raw)
                if "schema" in line:
                    if line["schema"] != TICK_JOURNAL_SCHEMA:
                        raise ValueError(
                            f"{self.path}:{number}: schema "
                            f"{line['schema']!r} is not "
                            f"{TICK_JOURNAL_SCHEMA!r}"
                        )
                    header_seen = True
                    continue
                if not header_seen:
                    raise ValueError(
                        f"{self.path}:{number}: missing "
                        f"{TICK_JOURNAL_SCHEMA!r} header line"
                    )
                entry = self._load_entry(line)
            except (json.JSONDecodeError, FileNotFoundError) as error:
                if tolerant and last:
                    warnings.warn(
                        TornEventLogWarning(
                            f"{self.path}:{number}: skipped torn final "
                            f"journal entry (writer crashed mid-append): "
                            f"{error}"
                        ),
                        stacklevel=2,
                    )
                    break
                raise ValueError(
                    f"{self.path}:{number}: corrupt journal entry: {error}"
                ) from error
            loaded.append(entry)
        return loaded

    # -- rotation --------------------------------------------------------------

    def reset(
        self,
        *,
        roster_id: int = 0,
        roster: Optional[Sequence[str]] = None,
        pin: Optional[np.ndarray] = None,
    ) -> None:
        """Truncate after a snapshot, re-seeding the live context.

        The snapshot owns everything up to now; the fresh journal only
        needs the roster registration and pinned feed (when any) that
        post-snapshot ticks will replay against.
        """
        self._handle.close()
        for stale in self.sidecar_dir.glob("*.npy"):
            stale.unlink()
        self._seq = 0
        self.tick_count = 0
        self._handle = self.path.open("w")
        self._write_line({"schema": TICK_JOURNAL_SCHEMA})
        if roster is not None:
            self.append_register(roster_id, roster)
        if pin is not None:
            self.append_pin(roster_id, pin)

    def close(self) -> None:
        """Close the journal file handle (entries stay readable)."""
        if not self._handle.closed:
            self._handle.close()


class SupervisedShardedMonitor(ShardedFleetMonitor):
    """A :class:`ShardedFleetMonitor` that survives its own workers.

    Drop-in: same constructor plus the supervision knobs, same serving
    API, same bit-identical merge semantics.  The difference is what
    happens when a shard worker dies — instead of a
    :class:`~repro.utils.errors.WorkerDiedError` unwinding to the
    caller, the supervisor restores the shard from the latest snapshot,
    replays the write-ahead journal, re-submits whatever call was in
    flight, and the stream continues as if nothing happened.

    Args:
        run_dir: Directory for this run's journal and snapshots.  Must
            be private to one supervisor (construction truncates the
            journal).
        snapshot_every: Auto-snapshot cadence in collection ticks; each
            snapshot truncates the journal.  ``0`` disables automatic
            snapshots (the journal then grows for the whole run).
        restart_policy: The per-shard restart budget (see
            :class:`RestartPolicy`).
        journal_fsync: fsync journal appends (default True — the
            durability mode the crash story assumes; turn off only for
            throughput experiments).
        durable_snapshots: fsync snapshot checkpoint writes (default
            True).
        **kwargs: Everything :class:`ShardedFleetMonitor` accepts.
    """

    def __init__(
        self,
        *args,
        run_dir: Union[str, Path],
        snapshot_every: int = 256,
        restart_policy: RestartPolicy = RestartPolicy(),
        journal_fsync: bool = True,
        durable_snapshots: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = int(snapshot_every)
        self.restart_policy = restart_policy
        self._journal = TickJournal(
            self.run_dir / "journal.jsonl", fsync=journal_fsync
        )
        self._snapshot_store = JsonCheckpoint(
            self.run_dir / "snapshot.json",
            kind=SHARD_SNAPSHOT_KIND,
            durable=durable_snapshots,
        )
        self._tick_index = 0
        self._roster_id = 0
        self._context_pin: Optional[np.ndarray] = None
        self._restarts: dict[int, deque] = {}
        self.recoveries = 0
        self.replayed_ticks = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def journal(self) -> TickJournal:
        """The write-ahead tick journal (read-only access for tooling)."""
        return self._journal

    def close(self) -> None:
        """Shut down shard workers and close the journal."""
        super().close()
        self._journal.close()

    # -- journaled ingestion ---------------------------------------------------

    def register_fleet(self, serials) -> tuple[str, ...]:
        roster = tuple(serials)
        self._roster_id += 1
        self._context_pin = None
        self._journal.append_register(self._roster_id, roster)
        return super().register_fleet(roster)

    def pin_feed(self, values: np.ndarray) -> None:
        matrix = self._check_matrix(values)
        self._journal.append_pin(self._roster_id, matrix)
        self._context_pin = matrix
        super().pin_feed(matrix)

    def _tick(self, hour, items, duplicates, single=False):
        # Every normalizing ingestion path (observe, observe_fleet, the
        # observe_tick fallbacks) funnels through here: probe, journal
        # the write-ahead entry, then dispatch.
        self.probe_shards()
        self._journal.append_tick_fleet(hour, items, duplicates, single)
        alerts = super()._tick(hour, items, duplicates, single)
        if single:
            self._after_tick()
        return alerts

    def _instrumented_tick(self, *args, **kwargs):
        alerts = super()._instrumented_tick(*args, **kwargs)
        self._after_tick()
        return alerts

    def observe_tick(self, hour, values=None, serials=None):
        if serials is None and self._roster is not None and self._partition is not None:
            # The partitioned matrix fast path dispatches without going
            # through _tick, so it gets its own write-ahead entry.
            self.probe_shards()
            if values is None and not self._feed_pinned:
                raise ValueError(
                    "no pinned feed: pass values= or call pin_feed() first"
                )
            matrix = self._check_matrix(values) if values is not None else None
            self._journal.append_tick_matrix(
                hour, self._roster_id, matrix=matrix, pinned=matrix is None,
            )
            return super().observe_tick(hour, matrix, None)
        # Explicit-roster and duplicate-roster paths normalize into
        # _tick, which journals them as fleet entries.
        return super().observe_tick(hour, values, serials)

    def finalize(self):
        self.probe_shards()
        return super().finalize()

    def _after_tick(self) -> None:
        self._tick_index += 1
        if self.snapshot_every and self._tick_index % self.snapshot_every == 0:
            self.checkpoint()

    # -- snapshots -------------------------------------------------------------

    def _export_shard(self, shard: int) -> dict:
        # A shard can die in the instant between serving and being
        # snapshotted; recover it (old snapshot + journal replay) and
        # export the rebuilt state instead of aborting the checkpoint.
        try:
            return super()._export_shard(shard)
        except WorkerDiedError as error:
            if shard in self._quarantined or not self._supervise_death(
                shard, error, in_flight_tick=False
            ):
                raise
            return super()._export_shard(shard)

    def checkpoint(self) -> JsonCheckpoint:
        """Snapshot every live shard and truncate the journal.

        Called automatically every ``snapshot_every`` ticks and after
        every model change; call it by hand before risky operations.
        The snapshot plus the (now empty) journal is always a complete
        recipe for rebuilding any shard.
        """
        for _ in range(self.n_shards + 1):
            try:
                self.snapshot(self._snapshot_store)
                break
            except WorkerDiedError:
                # A shard burned its restart budget mid-snapshot and was
                # quarantined; retry covers the remaining live shards.
                continue
        self._journal.reset(
            roster_id=self._roster_id,
            roster=self._roster,
            pin=self._context_pin if self._feed_pinned else None,
        )
        return self._snapshot_store

    def set_model(self, *args, **kwargs) -> int:
        generation = super().set_model(*args, **kwargs)
        self.checkpoint()
        return generation

    def begin_deployment(self, *args, **kwargs) -> int:
        generation = super().begin_deployment(*args, **kwargs)
        self.checkpoint()
        return generation

    def _maybe_resolve_deployment(self) -> None:
        active = self._deployment is not None
        super()._maybe_resolve_deployment()
        if active and self._deployment is None:
            # Cutover or rollback changed shard-side models; snapshot so
            # a recovered shard never resurrects the losing generation.
            self.checkpoint()

    # -- liveness --------------------------------------------------------------

    def probe_shards(self) -> None:
        """Detect (and recover) dead shards before dispatching a tick.

        Process mode polls each host's worker for an exit code — O(1)
        per shard, no round trip; serial mode checks for killed cells.
        Any death found here is recovered *outside* a tick, so there is
        no in-flight payload to exclude from replay.
        """
        for sid in self._active_shards():
            if self._hosts is not None:
                host = self._hosts[sid]
                exit_code = host.poll()
                if host.alive:
                    continue
                error = WorkerDiedError(
                    f"shard {sid} worker found dead by the pre-tick probe",
                    exit_code=exit_code,
                )
            else:
                if self._shards[sid] is not None:
                    continue
                error = WorkerDiedError(
                    f"shard {sid} cell found dead by the pre-tick probe"
                )
            self._supervise_death(sid, error, in_flight_tick=False)

    def ping_shards(self, timeout: float = 5.0) -> dict[int, bool]:
        """Request/response health of every active shard (operator tool).

        Unlike :meth:`probe_shards` this proves the worker *responds* —
        a wedged worker polls alive but fails its ping.  Returns
        ``{shard_id: healthy}``; never raises and never recovers (the
        verdict is the operator's to act on).  Serial shards are healthy
        exactly when their cell exists.
        """
        health: dict[int, bool] = {}
        for sid in self._active_shards():
            if self._hosts is not None:
                health[sid] = self._hosts[sid].ping(timeout=timeout)
            else:
                health[sid] = self._shards[sid] is not None
        return health

    # -- recovery --------------------------------------------------------------

    def _handle_shard_death(self, sid, func, payload, error):
        recovered = self._supervise_death(
            sid, error, in_flight_tick=func is _shard_tick
        )
        if not recovered:
            return None
        # Re-run the in-flight call on the fresh worker through the
        # normal observed path, so its alerts/faults/events merge
        # exactly as the original dispatch would have.
        if self._hosts is not None:
            try:
                return self._hosts[sid].submit(func, payload).result()
            except WorkerDiedError as again:
                return self._handle_shard_death(sid, func, payload, again)
        return capture_remote(worker_config(), func, self._shards[sid], payload)

    def _supervise_death(
        self, sid: int, error: WorkerDiedError, *, in_flight_tick: bool
    ) -> bool:
        """Death → respawn-and-replay, or quarantine once the budget is gone.

        Returns True when the shard is back in service.
        """
        log = get_event_log()
        death_data: dict = {
            "shard": sid,
            "error": str(error),
            "probe": not in_flight_tick,
        }
        if error.exit_code is not None:
            death_data["exit_code"] = error.exit_code
        log.emit("shard_died", hour=self._last_hour, **death_data)
        restarts = self._restarts.setdefault(sid, deque())
        horizon = self._tick_index - self.restart_policy.window_ticks
        while restarts and restarts[0] <= horizon:
            restarts.popleft()
        if len(restarts) >= self.restart_policy.max_restarts:
            self.quarantine_shard(sid)
            return False
        restarts.append(self._tick_index)
        self._recover(sid, exclude_in_flight=in_flight_tick)
        return True

    def _recover(self, sid: int, *, exclude_in_flight: bool) -> None:
        feed_was_pinned = self._feed_pinned
        if f"shard-{sid}" in self._snapshot_store:
            source = "snapshot"
            self.restore_shard(sid, self._snapshot_store)
        else:
            # No snapshot yet: the journal covers the whole run, so a
            # fresh shard built from the spec replays to parity.
            source = "fresh"
            builder = _ShardBuilder(self._spec)
            if self._hosts is not None:
                old = self._hosts[sid]
                if old.alive:
                    old.kill()
                self._hosts[sid] = WorkerHost(builder)
            else:
                self._shards[sid] = builder()
        replayed = self._replay_shard(sid, exclude_in_flight=exclude_in_flight)
        # Recovery re-established the shard's roster and feed from the
        # journal; the fleet-wide pin is intact again.
        self._feed_pinned = feed_was_pinned
        self.recoveries += 1
        self.replayed_ticks += replayed
        registry = get_registry()
        registry.counter("shard.recoveries", help=SHARD_RECOVERIES_HELP).inc()
        if replayed:
            registry.counter(
                "shard.journal_replayed_ticks", help=SHARD_REPLAYED_HELP
            ).inc(replayed)
        get_event_log().emit(
            "shard_recovered",
            hour=self._last_hour,
            shard=sid,
            replayed_ticks=replayed,
            source=source,
        )

    def _replay_shard(self, sid: int, *, exclude_in_flight: bool) -> int:
        """Deterministically re-run the journal's slice for one shard.

        Observability is suppressed for every replayed call (the
        original run already counted these ticks); only shard-side
        state is rebuilt.  Returns the number of tick entries actually
        executed on the shard.
        """
        entries = self._journal.entries()
        if exclude_in_flight and entries and entries[-1]["kind"] == "tick":
            # The dying dispatch's tick was journaled (write-ahead) but
            # never merged; _handle_shard_death re-submits it through
            # the observed path instead.
            entries = entries[:-1]
        n = self.n_shards
        partition: Optional[np.ndarray] = None
        roster: Optional[tuple[str, ...]] = None
        replayed = 0
        for entry in entries:
            kind = entry["kind"]
            if kind == "register":
                roster = tuple(entry["roster"])
                bucket = [
                    at for at, serial in enumerate(roster)
                    if shard_for(serial, n) == sid
                ]
                partition = np.asarray(bucket, dtype=np.intp)
                self._replay_call(
                    sid, _shard_pin,
                    {"roster": tuple(roster[at] for at in bucket)},
                )
            elif kind == "pin":
                if partition is None:
                    raise ValueError(
                        f"{self._journal.path}: pin entry without a "
                        f"preceding register entry"
                    )
                self._replay_call(
                    sid, _shard_pin, {"feed": entry["matrix"][partition]}
                )
            elif kind == "tick":
                if entry["mode"] == "fleet":
                    items = [
                        (serial, values)
                        for serial, values in entry["items"]
                        if shard_for(serial, n) == sid
                    ]
                    duplicates = [
                        serial for serial in entry["duplicates"]
                        if shard_for(serial, n) == sid
                    ]
                    if not items and not duplicates:
                        continue
                    payload = {
                        "hour": entry["hour"],
                        "shard": sid,
                        "items": items,
                        "duplicates": duplicates,
                        "single": bool(entry.get("single")),
                    }
                else:
                    if partition is None or len(partition) == 0:
                        continue
                    payload = {"hour": entry["hour"], "shard": sid}
                    if entry.get("pinned"):
                        payload["pinned"] = True
                    else:
                        payload["matrix"] = entry["matrix"][partition]
                self._replay_call(sid, _shard_tick, payload)
                replayed += 1
        return replayed

    def _replay_call(self, sid: int, func, payload) -> None:
        if self._hosts is not None:
            # observed=False ships no config: the worker runs under its
            # own no-op instruments and returns the bare result.
            self._hosts[sid].submit(func, payload, observed=False).result()
            return
        # Serial: run under throwaway captured instruments and discard
        # the envelope, so the parent's counters/events see nothing.
        capture_remote(worker_config(), func, self._shards[sid], payload)

    # -- reporting -------------------------------------------------------------

    def health_report(self) -> dict[str, object]:
        """The sharded report plus a ``"supervision"`` section."""
        report = super().health_report()
        report["supervision"] = {
            "journal_path": str(self._journal.path),
            "journal_ticks": self._journal.tick_count,
            "snapshot_every": self.snapshot_every,
            "recoveries": self.recoveries,
            "replayed_ticks": self.replayed_ticks,
            "quarantined_shards": sorted(self._quarantined),
            "restart_policy": {
                "max_restarts": self.restart_policy.max_restarts,
                "window_ticks": self.restart_policy.window_ticks,
            },
            "restarts_in_window": {
                sid: len(restarts)
                for sid, restarts in sorted(self._restarts.items())
                if restarts
            },
        }
        return report
