"""Binomial confidence intervals for drive-level rates.

The paper reports FDR over ~130 test drives and FAR over ~23,000 —
point estimates with very different uncertainties (95.49% of 133 drives
is ±4 points at 95% confidence).  This module provides Wilson score
intervals (well-behaved near 0 and 1, where detection rates live) and
attaches them to :class:`~repro.detection.metrics.DetectionResult` so
any reported comparison can be read with its error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.detection.metrics import DetectionResult
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class RateInterval:
    """A rate estimate with its Wilson score interval."""

    point: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width — the resolution of the reported rate."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{100 * self.point:.2f}% "
            f"[{100 * self.lower:.2f}, {100 * self.upper:.2f}] "
            f"@{self.confidence:.0%}"
        )


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> RateInterval:
    """Wilson score interval for a binomial proportion.

    Non-degenerate even for 0 or ``trials`` successes, unlike the normal
    approximation; ``trials = 0`` returns the vacuous [0, 1] interval.

    >>> interval = wilson_interval(127, 133)  # a paper-scale FDR
    >>> round(interval.point, 3), round(interval.lower, 3), round(interval.upper, 3)
    (0.955, 0.905, 0.979)
    """
    check_fraction("confidence", confidence, inclusive=False)
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(
            f"need 0 <= successes <= trials, got {successes}/{trials}"
        )
    if trials == 0:
        return RateInterval(point=0.0, lower=0.0, upper=1.0, confidence=confidence)
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denominator = 1.0 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * ((p * (1 - p) / trials + z**2 / (4 * trials**2)) ** 0.5)
        / denominator
    )
    # Exact boundary cases: rounding must not pull the interval off the
    # observed extreme (0 successes has lower bound exactly 0).
    lower = 0.0 if successes == 0 else max(0.0, centre - margin)
    upper = 1.0 if successes == trials else min(1.0, centre + margin)
    return RateInterval(
        point=p, lower=lower, upper=upper, confidence=confidence
    )


def fdr_interval(
    result: DetectionResult, *, confidence: float = 0.95
) -> RateInterval:
    """Wilson interval on the failure detection rate."""
    return wilson_interval(
        result.n_detected, result.n_failed, confidence=confidence
    )


def far_interval(
    result: DetectionResult, *, confidence: float = 0.95
) -> RateInterval:
    """Wilson interval on the false alarm rate."""
    return wilson_interval(
        result.n_false_alarms, result.n_good, confidence=confidence
    )


def rates_compatible(
    a: DetectionResult,
    b: DetectionResult,
    *,
    metric: str = "fdr",
    confidence: float = 0.95,
) -> bool:
    """True when the two results' intervals for ``metric`` overlap.

    Overlapping intervals mean the observed difference is within
    sampling noise at the given confidence — the sanity check to apply
    before declaring one model "better" on a handful of failed drives.
    """
    if metric == "fdr":
        interval_a, interval_b = fdr_interval(a, confidence=confidence), fdr_interval(b, confidence=confidence)
    elif metric == "far":
        interval_a, interval_b = far_interval(a, confidence=confidence), far_interval(b, confidence=confidence)
    else:
        raise ValueError(f"metric must be 'fdr' or 'far', got {metric!r}")
    return interval_a.lower <= interval_b.upper and interval_b.lower <= interval_a.upper
