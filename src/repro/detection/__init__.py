"""Drive-level detection: voting rules, metrics, evaluation and serving.

The paper evaluates at the *drive* level, not the sample level: a drive
is flagged when its recent per-sample scores vote failed (Section V-A3),
and the reported numbers are FDR/FAR/TIA over drives (Section V-A1).
This package owns that layer end to end:

* :mod:`~repro.detection.voting` — the N-voter majority and
  mean-threshold rules over a score series;
* :mod:`~repro.detection.evaluator` — offline harness turning per-drive
  score series into :class:`DetectionResult` and ROC sweeps;
* :mod:`~repro.detection.metrics` — FDR/FAR/TIA containers, TIA
  histogram bins (Figures 3-4), ROC utilities;
* :mod:`~repro.detection.intervals` — Wilson confidence intervals for
  the reported rates;
* :mod:`~repro.detection.cost` — pricing an operating point
  (alarm/miss/data-loss costs) to choose voters or thresholds;
* :mod:`~repro.detection.streaming` — the online
  :class:`FleetMonitor` with per-drive buffers, fault gating and
  quarantine (the deployment surface);
* :mod:`~repro.detection.columnar` — the structure-of-arrays serving
  engine behind ``FleetMonitor(engine="columnar")``: whole-tick ingest,
  mask gating, ring-buffer voting matrices, one batched model call;
* :mod:`~repro.detection.sharded` — fleet-scale serving:
  :class:`ShardedFleetMonitor` partitions drives across N columnar
  shards by serial hash, fans ticks out (in-process or one worker
  process per shard), merges alerts/faults/observability back into one
  coordinator bit-identical to a single monitor, and layers shard
  snapshot/restore plus canary model rollouts on top;
* :mod:`~repro.detection.reporting` — operator-readable explanations
  of raised alerts.
"""

from repro.detection.evaluator import (
    Detector,
    DriveScoreSeries,
    evaluate_detection,
    roc_over_thresholds,
    roc_over_voters,
)
from repro.detection.cost import (
    CostBreakdown,
    OperationalCostModel,
    choose_operating_point,
    expected_annual_cost,
)
from repro.detection.intervals import (
    RateInterval,
    far_interval,
    fdr_interval,
    rates_compatible,
    wilson_interval,
)
from repro.detection.reporting import AlertReport, PathStep, explain_alert
from repro.detection.metrics import (
    TIA_BIN_LABELS,
    TIA_BINS,
    DetectionResult,
    RocPoint,
    partial_auc,
    roc_dominates,
)
from repro.detection.columnar import (
    ColumnarEngine,
    MajorityVoteMatrix,
    MeanThresholdMatrix,
    window_matrix_for,
)
from repro.detection.sharded import (
    SHARD_MODES,
    CanaryPolicy,
    ShardedFleetMonitor,
    ShardSpec,
    TreeBatchScorer,
    TreeSampleScorer,
    VoterSpec,
    shard_for,
)
from repro.detection.supervision import (
    TICK_JOURNAL_SCHEMA,
    RestartPolicy,
    SupervisedShardedMonitor,
    TickJournal,
)
from repro.detection.streaming import (
    ENGINES,
    Alert,
    DriveStatus,
    FleetMonitor,
    OnlineFeatureBuffer,
    OnlineMajorityVote,
    OnlineMeanThreshold,
    QuarantinePolicy,
    WindowedVoter,
)
from repro.detection.voting import MajorityVoteDetector, MeanThresholdDetector

__all__ = [
    "Alert",
    "CostBreakdown",
    "OperationalCostModel",
    "AlertReport",
    "PathStep",
    "RateInterval",
    "explain_alert",
    "choose_operating_point",
    "expected_annual_cost",
    "far_interval",
    "fdr_interval",
    "rates_compatible",
    "wilson_interval",
    "DetectionResult",
    "DriveStatus",
    "FleetMonitor",
    "QuarantinePolicy",
    "OnlineFeatureBuffer",
    "OnlineMajorityVote",
    "OnlineMeanThreshold",
    "WindowedVoter",
    "ENGINES",
    "SHARD_MODES",
    "CanaryPolicy",
    "ShardSpec",
    "ShardedFleetMonitor",
    "TreeBatchScorer",
    "TreeSampleScorer",
    "VoterSpec",
    "shard_for",
    "TICK_JOURNAL_SCHEMA",
    "RestartPolicy",
    "SupervisedShardedMonitor",
    "TickJournal",
    "ColumnarEngine",
    "MajorityVoteMatrix",
    "MeanThresholdMatrix",
    "window_matrix_for",
    "Detector",
    "DriveScoreSeries",
    "MajorityVoteDetector",
    "MeanThresholdDetector",
    "RocPoint",
    "TIA_BINS",
    "TIA_BIN_LABELS",
    "evaluate_detection",
    "partial_auc",
    "roc_dominates",
    "roc_over_thresholds",
    "roc_over_voters",
]
