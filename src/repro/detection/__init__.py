"""Drive-level detection: voting rules, metrics and evaluation."""

from repro.detection.evaluator import (
    Detector,
    DriveScoreSeries,
    evaluate_detection,
    roc_over_thresholds,
    roc_over_voters,
)
from repro.detection.cost import (
    CostBreakdown,
    OperationalCostModel,
    choose_operating_point,
    expected_annual_cost,
)
from repro.detection.intervals import (
    RateInterval,
    far_interval,
    fdr_interval,
    rates_compatible,
    wilson_interval,
)
from repro.detection.reporting import AlertReport, PathStep, explain_alert
from repro.detection.metrics import (
    TIA_BIN_LABELS,
    TIA_BINS,
    DetectionResult,
    RocPoint,
    partial_auc,
    roc_dominates,
)
from repro.detection.streaming import (
    Alert,
    DriveStatus,
    FleetMonitor,
    OnlineFeatureBuffer,
    OnlineMajorityVote,
    OnlineMeanThreshold,
    QuarantinePolicy,
)
from repro.detection.voting import MajorityVoteDetector, MeanThresholdDetector

__all__ = [
    "Alert",
    "CostBreakdown",
    "OperationalCostModel",
    "AlertReport",
    "PathStep",
    "RateInterval",
    "explain_alert",
    "choose_operating_point",
    "expected_annual_cost",
    "far_interval",
    "fdr_interval",
    "rates_compatible",
    "wilson_interval",
    "DetectionResult",
    "DriveStatus",
    "FleetMonitor",
    "QuarantinePolicy",
    "OnlineFeatureBuffer",
    "OnlineMajorityVote",
    "OnlineMeanThreshold",
    "Detector",
    "DriveScoreSeries",
    "MajorityVoteDetector",
    "MeanThresholdDetector",
    "RocPoint",
    "TIA_BINS",
    "TIA_BIN_LABELS",
    "evaluate_detection",
    "partial_auc",
    "roc_dominates",
    "roc_over_thresholds",
    "roc_over_voters",
]
