"""Backpropagation artificial neural network — the paper's control model.

The paper evaluates every experiment against the plain BP ANN from the
authors' MSST'13 work: one hidden layer (19-30-1, 13-13-1 or 12-20-1
depending on the feature set), learning rate 0.1, at most 400 training
iterations, good drives labelled +1 and failed drives -1.  This module
implements that network from scratch in numpy: tanh units (so the +/-1
labels are natural targets), mean-squared-error loss, mini-batch
stochastic gradient descent, per-sample weights, and z-score input
standardisation (fitted on the training set) so the raw SMART value
ranges do not saturate the units.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ann.activations import Activation, get_activation
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_1d, check_2d, check_matching_length, check_positive


class BPNeuralNetwork:
    """Feed-forward network trained with backpropagation.

    Args:
        hidden_sizes: Units per hidden layer, e.g. ``(13,)`` for the
            paper's 13-13-1 configuration on the critical feature set.
        learning_rate: SGD step size (paper: 0.1).
        max_iter: Training epochs (paper: 400).
        batch_size: Mini-batch size (``None`` = full batch, the classic
            BP regime of the paper's era and our default control setup).
        activation: Hidden activation (default ``"tanh"``).
        output_activation: Output activation (default ``"tanh"`` to match
            the +/-1 targets).
        scaling: Input scaling fitted on the training set —
            ``"max_abs"`` (divide each feature by its max magnitude, the
            classic normalise-to-[-1, 1] practice; default),
            ``"standardize"`` (per-feature z-scores) or ``"none"``.
        tol: Stop early when the epoch loss improves by less than this.
        seed: Seed / generator for weight init and batch shuffling.

    Example:
        >>> net = BPNeuralNetwork(hidden_sizes=(4,), max_iter=200, seed=0)
        >>> _ = net.fit([[0.0], [1.0]], [-1.0, 1.0])
        >>> net.predict([[0.0]]).shape
        (1,)
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (13,),
        learning_rate: float = 0.1,
        max_iter: int = 400,
        batch_size: Optional[int] = None,
        activation: str = "tanh",
        output_activation: str = "tanh",
        scaling: str = "max_abs",
        tol: float = 1e-6,
        seed: RandomState = None,
    ):
        self.hidden_sizes = tuple(int(s) for s in hidden_sizes)
        if any(size < 1 for size in self.hidden_sizes):
            raise ValueError(f"hidden_sizes must be positive, got {hidden_sizes!r}")
        self.learning_rate = check_positive("learning_rate", float(learning_rate))
        self.max_iter = int(check_positive("max_iter", max_iter))
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        self.batch_size = batch_size
        self.activation: Activation = get_activation(activation)
        self.output_activation: Activation = get_activation(output_activation)
        if scaling not in ("max_abs", "standardize", "none"):
            raise ValueError(
                f"scaling must be 'max_abs', 'standardize' or 'none', got {scaling!r}"
            )
        self.scaling = scaling
        self.tol = float(tol)
        self.seed = seed
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_curve_: list[float] = []
        self.n_features_: Optional[int] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        X: object,
        y: Sequence[float],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "BPNeuralNetwork":
        """Train with mini-batch SGD on mean-squared error."""
        matrix = check_2d("X", X)
        targets = check_1d("y", y)
        check_matching_length(("X", matrix), ("y", targets))
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        weights = (
            np.ones(matrix.shape[0], dtype=float)
            if sample_weight is None
            else check_1d("sample_weight", sample_weight)
        )
        check_matching_length(("X", matrix), ("sample_weight", weights))

        rng = as_rng(self.seed)
        self.n_features_ = matrix.shape[1]
        inputs = self._fit_scaler(matrix)
        layer_sizes = [self.n_features_, *self.hidden_sizes, 1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        n = inputs.shape[0]
        batch = n if self.batch_size is None else min(self.batch_size, n)
        column_targets = targets.reshape(-1, 1)
        column_weights = weights.reshape(-1, 1)
        self.loss_curve_ = []
        previous_loss = np.inf
        for _ in range(self.max_iter):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                self._sgd_step(inputs[rows], column_targets[rows], column_weights[rows])
            loss = self._loss(inputs, column_targets, column_weights)
            self.loss_curve_.append(loss)
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        return self

    def _fit_scaler(self, matrix: np.ndarray) -> np.ndarray:
        if self.scaling == "none":
            self._mean = np.zeros(matrix.shape[1])
            self._scale = np.ones(matrix.shape[1])
        elif self.scaling == "max_abs":
            self._mean = np.zeros(matrix.shape[1])
            peak = np.nanmax(np.abs(matrix), axis=0)
            self._scale = np.where(np.isfinite(peak) & (peak > 0), peak, 1.0)
        else:
            self._mean = np.nanmean(matrix, axis=0)
            self._mean = np.where(np.isfinite(self._mean), self._mean, 0.0)
            std = np.nanstd(matrix, axis=0)
            self._scale = np.where(np.isfinite(std) & (std > 0), std, 1.0)
        return self._transform(matrix)

    def _transform(self, matrix: np.ndarray) -> np.ndarray:
        scaled = (matrix - self._mean) / self._scale
        # Missing SMART readings enter the network as 0 = "at the mean".
        return np.nan_to_num(scaled, nan=0.0, posinf=0.0, neginf=0.0)

    def _forward(self, inputs: np.ndarray) -> list[np.ndarray]:
        """Activations per layer, index 0 being the inputs themselves."""
        activations = [inputs]
        last = len(self.weights_) - 1
        for index, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = activations[-1] @ w + b
            act = self.output_activation if index == last else self.activation
            activations.append(act.forward(z))
        return activations

    def _sgd_step(
        self, inputs: np.ndarray, targets: np.ndarray, weights: np.ndarray
    ) -> None:
        activations = self._forward(inputs)
        batch_weight = weights.sum()
        if batch_weight <= 0:
            return
        # MSE gradient at the output, weighted per sample.
        delta = (
            (activations[-1] - targets)
            * self.output_activation.derivative_from_output(activations[-1])
            * weights
            / batch_weight
        )
        for layer in range(len(self.weights_) - 1, -1, -1):
            grad_w = activations[layer].T @ delta
            grad_b = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (
                    self.activation.derivative_from_output(activations[layer])
                )
            self.weights_[layer] -= self.learning_rate * grad_w
            self.biases_[layer] -= self.learning_rate * grad_b

    def _loss(
        self, inputs: np.ndarray, targets: np.ndarray, weights: np.ndarray
    ) -> float:
        outputs = self._forward(inputs)[-1]
        total_weight = weights.sum()
        if total_weight <= 0:
            return 0.0
        return float(np.sum(weights * (outputs - targets) ** 2) / total_weight)

    # -- inference --------------------------------------------------------------

    def _check_fitted(self) -> None:
        if not self.weights_:
            raise RuntimeError("BPNeuralNetwork is not fitted; call fit() first")

    def decision_function(self, X: object) -> np.ndarray:
        """Raw network output in (-1, 1); negative values lean "failed"."""
        self._check_fitted()
        matrix = check_2d("X", X)
        if matrix.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {matrix.shape[1]} features, network was fitted on {self.n_features_}"
            )
        return self._forward(self._transform(matrix))[-1].ravel()

    def predict(self, X: object, threshold: float = 0.0) -> np.ndarray:
        """Class labels in {-1, +1}: sign of the output versus ``threshold``."""
        scores = self.decision_function(X)
        return np.where(scores >= threshold, 1, -1)
