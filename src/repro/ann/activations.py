"""Activation functions for the BP ANN baseline.

Each activation exposes the forward map and its derivative expressed in
terms of the *activation output* (the form backpropagation consumes, so
the forward pass values can be reused directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Activation:
    """A forward function plus its derivative w.r.t. the pre-activation,
    written as a function of the forward output."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative_from_output: Callable[[np.ndarray], np.ndarray]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Split by sign to avoid overflow in exp for large |z|.
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


SIGMOID = Activation("sigmoid", _sigmoid, lambda a: a * (1.0 - a))
TANH = Activation("tanh", np.tanh, lambda a: 1.0 - a**2)
RELU = Activation(
    "relu", lambda z: np.maximum(z, 0.0), lambda a: (a > 0).astype(float)
)
IDENTITY = Activation("identity", lambda z: z, lambda a: np.ones_like(a))

ACTIVATIONS = {act.name: act for act in (SIGMOID, TANH, RELU, IDENTITY)}


def get_activation(name: str) -> Activation:
    """Look up an activation by name, raising with the valid choices."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"activation must be one of {sorted(ACTIVATIONS)}, got {name!r}"
        ) from None
