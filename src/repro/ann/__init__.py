"""BP artificial neural network baseline (the paper's control model)."""

from repro.ann.activations import ACTIVATIONS, Activation, get_activation
from repro.ann.network import BPNeuralNetwork

__all__ = ["ACTIVATIONS", "Activation", "BPNeuralNetwork", "get_activation"]
