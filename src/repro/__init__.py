"""Reproduction of "Hard Drive Failure Prediction Using Classification and
Regression Trees" (Li et al., DSN 2014).

Quick start::

    from repro import (
        SmartDataset, default_fleet_config,
        DriveFailurePredictor, HealthDegreePredictor,
    )

    fleet = SmartDataset.generate(default_fleet_config())
    split = fleet.filter_family("W").split(seed=1)
    ct = DriveFailurePredictor().fit(split)
    print(ct.evaluate(split, n_voters=11).as_percentages())

Subpackages:

* :mod:`repro.core` — the prediction pipelines (public API).
* :mod:`repro.tree` — CART (Algorithms 1 and 2) plus ensembles.
* :mod:`repro.ann` — the BP ANN control model.
* :mod:`repro.smart` — SMART attributes, drives, synthetic fleets, IO.
* :mod:`repro.features` — change rates, selection statistics, vectorisation.
* :mod:`repro.detection` — voting detectors, FDR/FAR/TIA, ROC.
* :mod:`repro.health` — deterioration windows and the RT health model.
* :mod:`repro.updating` — model-aging strategies and simulation.
* :mod:`repro.reliability` — Markov MTTDL models (Table VI, Figure 12).
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.explain` — subtree reports from alert provenance,
  crossfit what-if sweeps, redundancy summaries (``repro-explain``).
* :mod:`repro.observability` — metrics, tracing, events, SLOs.
"""

from repro.core import (
    AnnConfig,
    AnnFailurePredictor,
    CTConfig,
    DriveFailurePredictor,
    FAILED_LABEL,
    FleetPredictor,
    GenericFailurePredictor,
    GOOD_LABEL,
    RTConfig,
    SamplingConfig,
)
from repro.detection import (
    DetectionResult,
    DriveScoreSeries,
    MajorityVoteDetector,
    MeanThresholdDetector,
    RocPoint,
)
from repro.features import Feature, FeatureExtractor, get_feature_set
from repro.health import HealthDegreePredictor
from repro.smart import (
    DriveRecord,
    FleetConfig,
    SmartDataset,
    default_fleet_config,
)
from repro.tree import ClassificationTree, RegressionTree

__version__ = "1.0.0"

__all__ = [
    "AnnConfig",
    "AnnFailurePredictor",
    "CTConfig",
    "ClassificationTree",
    "DetectionResult",
    "DriveFailurePredictor",
    "DriveRecord",
    "DriveScoreSeries",
    "FAILED_LABEL",
    "Feature",
    "FleetPredictor",
    "GenericFailurePredictor",
    "FeatureExtractor",
    "FleetConfig",
    "GOOD_LABEL",
    "HealthDegreePredictor",
    "MajorityVoteDetector",
    "MeanThresholdDetector",
    "RTConfig",
    "RegressionTree",
    "RocPoint",
    "SamplingConfig",
    "SmartDataset",
    "default_fleet_config",
    "get_feature_set",
    "__version__",
]
