"""Fault injection and chaos tooling for the prediction pipeline.

The paper's deployment story — score every drive every hour, page an
operator on a majority vote — only works if the pipeline survives what
real fleets throw at it.  This package provides deterministic,
seed-driven corruptors for SMART telemetry (:mod:`repro.robustness.faults`),
profile application at both the dataset and streaming layers
(:mod:`repro.robustness.inject`), and the helpers the chaos test suite
builds on.
"""

from repro.robustness.faults import (
    BUILTIN_PROFILES,
    DuplicateTicks,
    Fault,
    FaultProfile,
    NaNInjection,
    OutOfOrderTicks,
    SampleDrop,
    Spike,
    StreamEvent,
    StuckValue,
    TruncateHistory,
    builtin_profiles,
)
from repro.robustness.inject import (
    corrupted_cell_fraction,
    dataset_events,
    inject_dataset,
    inject_stream,
    replay_stream,
    resolve_profile,
)

#: Schema tag on the CHAOS_report.json CI artifact (see
#: ``docs/observability.md``; bump on breaking change).
CHAOS_REPORT_SCHEMA = "repro.chaos-report/v1"

__all__ = [
    "BUILTIN_PROFILES",
    "CHAOS_REPORT_SCHEMA",
    "DuplicateTicks",
    "Fault",
    "FaultProfile",
    "NaNInjection",
    "OutOfOrderTicks",
    "SampleDrop",
    "Spike",
    "StreamEvent",
    "StuckValue",
    "TruncateHistory",
    "builtin_profiles",
    "corrupted_cell_fraction",
    "dataset_events",
    "inject_dataset",
    "inject_stream",
    "replay_stream",
    "resolve_profile",
]
