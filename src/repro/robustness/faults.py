"""Deterministic, seed-driven corruptors for SMART telemetry.

Real fleets feed the predictor dirty data: collection daemons miss
samples, sensors stick or spike, NaN/inf values leak out of firmware,
collectors replay or reorder ticks, and drives drop out of the feed
mid-history (the paper itself notes "some samples were missed because
of sampling or storing errors", and CART's surrogate splits exist
precisely because SMART values go missing in the field).  Each
:class:`Fault` here reproduces one of those corruptions *reproducibly*:
the same seed and the same fleet always yield the same corruption, so
chaos tests can assert exact behaviour.

Every fault can be applied at two layers:

* **dataset level** (:meth:`Fault.apply_drive`) — corrupt a
  :class:`~repro.smart.drive.DriveRecord`'s value matrix in place of a
  copy.  Timestamps stay strictly increasing (a ``DriveRecord``
  invariant), so ordering faults are identity here.
* **stream level** (:meth:`Fault.apply_stream`) — corrupt a replayed
  event list (``(serial, hour, values)`` ticks) as a collector would
  see it, including dropping, duplicating and reordering ticks.

Determinism protocol: randomness is derived per ``(fault, drive
serial)`` via :func:`repro.utils.rng.spawn_child` keyed by a CRC of the
serial, so corruption of one drive never depends on how many other
drives were corrupted before it.
"""

from __future__ import annotations

import zlib
from abc import ABC
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.smart.drive import DriveRecord
from repro.utils.rng import spawn_child
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class StreamEvent:
    """One collector tick: a drive reported its channel vector at ``hour``."""

    serial: str
    hour: float
    values: tuple[float, ...]

    @classmethod
    def from_arrays(cls, serial: str, hour: float, values: np.ndarray) -> "StreamEvent":
        """Build an event from a ``DriveRecord``-style row (values copied)."""
        return cls(serial=serial, hour=float(hour), values=tuple(float(v) for v in values))

    def values_array(self) -> np.ndarray:
        """The channel vector as a float array (what a monitor ingests)."""
        return np.asarray(self.values, dtype=float)


def _serial_key(serial: str) -> int:
    """A stable non-negative key for per-drive child streams."""
    return zlib.crc32(serial.encode("utf-8")) & 0x7FFFFFFF


def _drive_rng(rng: np.random.Generator, serial: str) -> np.random.Generator:
    return spawn_child(rng, _serial_key(serial))


def _group_by_serial(events: Sequence[StreamEvent]) -> dict[str, list[int]]:
    groups: dict[str, list[int]] = {}
    for index, event in enumerate(events):
        groups.setdefault(event.serial, []).append(index)
    return groups


class Fault(ABC):
    """One corruption mechanism, applicable per drive or per stream.

    Subclasses override whichever layers the fault exists at; the
    defaults are identity, so e.g. ordering faults (meaningless inside a
    ``DriveRecord``) are no-ops at dataset level.
    """

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        """Corrupt one drive's recorded history (identity by default)."""
        return drive

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        """Corrupt one drive's replayed tick list (identity by default)."""
        return events

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _with_values(drive: DriveRecord, values: np.ndarray) -> DriveRecord:
        return replace(drive, hours=drive.hours.copy(), values=values)


@dataclass(frozen=True)
class SampleDrop(Fault):
    """Collection misses: whole samples vanish.

    At dataset level a dropped sample becomes an all-NaN row (the
    library's encoding of a missed sample); at stream level the tick
    never arrives at all.
    """

    rate: float = 0.05

    def __post_init__(self) -> None:
        check_fraction("rate", self.rate)

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        dropped = rng.random(drive.n_samples) < self.rate
        if not dropped.any():
            return drive
        values = drive.values.copy()
        values[dropped] = np.nan
        return self._with_values(drive, values)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        keep = rng.random(len(events)) >= self.rate
        return [event for event, kept in zip(events, keep) if kept]


@dataclass(frozen=True)
class NaNInjection(Fault):
    """Firmware glitches: individual cells read back NaN (or inf).

    ``inf_fraction`` of the corrupted cells become ``+/-inf`` instead of
    NaN — both are "missing" to the tree's routing, but inf additionally
    stresses any code that only checks ``isnan``.
    """

    rate: float = 0.02
    inf_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("rate", self.rate)
        check_fraction("inf_fraction", self.inf_fraction)

    def _corrupt_matrix(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hit = rng.random(values.shape) < self.rate
        if not hit.any():
            return values
        out = values.copy()
        out[hit] = np.nan
        if self.inf_fraction > 0.0:
            as_inf = hit & (rng.random(values.shape) < self.inf_fraction)
            signs = np.where(rng.random(values.shape) < 0.5, -np.inf, np.inf)
            out[as_inf] = signs[as_inf]
        return out

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        corrupted = self._corrupt_matrix(drive.values, rng)
        if corrupted is drive.values:
            return drive
        return self._with_values(drive, corrupted)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        out = []
        for event in events:
            row = event.values_array().reshape(1, -1)
            corrupted = self._corrupt_matrix(row, rng)
            if corrupted is row:
                out.append(event)
            else:
                out.append(StreamEvent.from_arrays(event.serial, event.hour, corrupted[0]))
        return out


@dataclass(frozen=True)
class StuckValue(Fault):
    """A stuck sensor: one channel freezes at its current reading.

    Each drive is affected with probability ``drive_rate``; an affected
    drive picks one channel and a random onset, after which the channel
    repeats the onset reading forever.
    """

    drive_rate: float = 0.1

    def __post_init__(self) -> None:
        check_fraction("drive_rate", self.drive_rate)

    def _pick(self, rng: np.random.Generator, n_samples: int, n_channels: int):
        if n_samples < 2 or rng.random() >= self.drive_rate:
            return None
        channel = int(rng.integers(n_channels))
        onset = int(rng.integers(n_samples - 1))
        return channel, onset

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        picked = self._pick(rng, drive.n_samples, drive.values.shape[1])
        if picked is None:
            return drive
        channel, onset = picked
        values = drive.values.copy()
        stuck_at = values[onset, channel]
        if not np.isfinite(stuck_at):
            stuck_at = 0.0
        values[onset:, channel] = stuck_at
        return self._with_values(drive, values)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        out = list(events)
        for serial, indices in _group_by_serial(events).items():
            n_channels = len(events[indices[0]].values)
            picked = self._pick(_drive_rng(rng, serial), len(indices), n_channels)
            if picked is None:
                continue
            channel, onset = picked
            stuck_at = events[indices[onset]].values[channel]
            if not np.isfinite(stuck_at):
                stuck_at = 0.0
            for index in indices[onset:]:
                row = out[index].values_array()
                row[channel] = stuck_at
                out[index] = StreamEvent.from_arrays(out[index].serial, out[index].hour, row)
        return out


@dataclass(frozen=True)
class Spike(Fault):
    """Transient sensor spikes: a cell jumps by ``magnitude`` sigmas."""

    rate: float = 0.01
    magnitude: float = 8.0

    def __post_init__(self) -> None:
        check_fraction("rate", self.rate)

    def _spike_matrix(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        hit = rng.random(values.shape) < self.rate
        hit &= np.isfinite(values)
        if not hit.any():
            return values
        finite = np.where(np.isfinite(values), values, np.nan)
        scale = np.nanstd(finite, axis=0)
        scale = np.where(np.isfinite(scale) & (scale > 0), scale, 1.0)
        signs = np.where(rng.random(values.shape) < 0.5, -1.0, 1.0)
        out = values.copy()
        out[hit] += (signs * self.magnitude * scale[np.newaxis, :])[hit]
        return out

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        spiked = self._spike_matrix(drive.values, rng)
        if spiked is drive.values:
            return drive
        return self._with_values(drive, spiked)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        out = []
        for event in events:
            row = event.values_array().reshape(1, -1)
            hit = (rng.random(row.shape) < self.rate) & np.isfinite(row)
            if not hit.any():
                out.append(event)
                continue
            row[hit] += self.magnitude * np.maximum(np.abs(row[hit]), 1.0)
            out.append(StreamEvent.from_arrays(event.serial, event.hour, row[0]))
        return out


@dataclass(frozen=True)
class TruncateHistory(Fault):
    """Drives fall out of the feed: the tail of a history vanishes.

    Each drive is truncated with probability ``drive_rate``, losing a
    random tail of up to ``max_fraction`` of its samples (always keeping
    at least one sample).
    """

    drive_rate: float = 0.1
    max_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_fraction("drive_rate", self.drive_rate)
        check_fraction("max_fraction", self.max_fraction)

    def _kept(self, rng: np.random.Generator, n_samples: int):
        if n_samples < 2 or rng.random() >= self.drive_rate:
            return None
        lost = int(np.ceil(rng.random() * self.max_fraction * n_samples))
        return max(1, n_samples - lost)

    def apply_drive(self, drive: DriveRecord, rng: np.random.Generator) -> DriveRecord:
        kept = self._kept(rng, drive.n_samples)
        if kept is None or kept >= drive.n_samples:
            return drive
        return replace(
            drive,
            hours=drive.hours[:kept].copy(),
            values=drive.values[:kept].copy(),
        )

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        drop: set[int] = set()
        for serial, indices in _group_by_serial(events).items():
            kept = self._kept(_drive_rng(rng, serial), len(indices))
            if kept is not None and kept < len(indices):
                drop.update(indices[kept:])
        if not drop:
            return list(events)
        return [event for index, event in enumerate(events) if index not in drop]


@dataclass(frozen=True)
class OutOfOrderTicks(Fault):
    """Collector reordering: adjacent ticks swap places (stream only)."""

    rate: float = 0.05

    def __post_init__(self) -> None:
        check_fraction("rate", self.rate)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        out = list(events)
        index = 0
        while index < len(out) - 1:
            if rng.random() < self.rate:
                out[index], out[index + 1] = out[index + 1], out[index]
                index += 2
            else:
                index += 1
        return out


@dataclass(frozen=True)
class DuplicateTicks(Fault):
    """Collector replay: a tick arrives twice (stream only)."""

    rate: float = 0.05

    def __post_init__(self) -> None:
        check_fraction("rate", self.rate)

    def apply_stream(
        self, events: list[StreamEvent], rng: np.random.Generator
    ) -> list[StreamEvent]:
        out: list[StreamEvent] = []
        for event in events:
            out.append(event)
            if rng.random() < self.rate:
                out.append(event)
        return out


@dataclass(frozen=True)
class FaultProfile:
    """A named, ordered composition of faults.

    Profiles are what the chaos harness iterates over: each models one
    class of production incident (see :data:`BUILTIN_PROFILES`).
    """

    name: str
    faults: tuple[Fault, ...] = field(default=())
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))


def builtin_profiles() -> dict[str, FaultProfile]:
    """The built-in fault profiles, keyed by name.

    Rates are chosen so total sample corruption stays at or below ~10%,
    the regime the chaos suite asserts bounded metric degradation for.
    """
    return {p.name: p for p in (
        FaultProfile("clean", (), "no corruption (control)"),
        FaultProfile(
            "dropout",
            (SampleDrop(rate=0.08),),
            "collection misses: ~8% of samples vanish",
        ),
        FaultProfile(
            "sensor-noise",
            (NaNInjection(rate=0.04, inf_fraction=0.25), Spike(rate=0.02)),
            "firmware glitches: NaN/inf cells plus transient spikes",
        ),
        FaultProfile(
            "stuck-sensor",
            (StuckValue(drive_rate=0.15),),
            "one channel freezes on ~15% of drives",
        ),
        FaultProfile(
            "dirty-feed",
            (OutOfOrderTicks(rate=0.05), DuplicateTicks(rate=0.05)),
            "collector reordering and replay (stream only)",
        ),
        FaultProfile(
            "truncated",
            (TruncateHistory(drive_rate=0.15, max_fraction=0.3),),
            "drives drop out of the feed mid-history",
        ),
        FaultProfile(
            "everything",
            (
                SampleDrop(rate=0.03),
                NaNInjection(rate=0.02, inf_fraction=0.2),
                StuckValue(drive_rate=0.05),
                Spike(rate=0.01),
                TruncateHistory(drive_rate=0.05, max_fraction=0.2),
                OutOfOrderTicks(rate=0.02),
                DuplicateTicks(rate=0.02),
            ),
            "all fault classes at once, each at low rate",
        ),
    )}


#: Name -> profile for the chaos harness and the CLI surfaces.
BUILTIN_PROFILES: dict[str, FaultProfile] = builtin_profiles()
