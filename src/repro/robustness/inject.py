"""Apply fault profiles to fleets and to streaming replays.

The two entry points mirror the two layers a real deployment ingests
data at:

* :func:`inject_dataset` corrupts a :class:`~repro.smart.dataset.SmartDataset`
  before training/evaluation (dirty historical telemetry);
* :func:`inject_stream` corrupts a replayed tick list before it reaches
  a :class:`~repro.detection.streaming.FleetMonitor` (dirty live feed),
  including the ordering faults a ``DriveRecord`` cannot represent.

Both are deterministic: corruption depends only on ``(profile, seed)``
and each drive's serial, never on fleet iteration order, so the chaos
suite can assert exact downstream behaviour.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.robustness.faults import (
    BUILTIN_PROFILES,
    FaultProfile,
    StreamEvent,
    _serial_key,
)
from repro.smart.dataset import SmartDataset
from repro.smart.drive import DriveRecord
from repro.utils.rng import RandomState, as_rng, spawn_child


def resolve_profile(profile: Union[str, FaultProfile]) -> FaultProfile:
    """Accept a profile or the name of a built-in one."""
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return BUILTIN_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; built-ins: "
            f"{', '.join(sorted(BUILTIN_PROFILES))}"
        ) from None


def inject_dataset(
    dataset: SmartDataset,
    profile: Union[str, FaultProfile],
    *,
    seed: RandomState = 0,
) -> SmartDataset:
    """A corrupted copy of ``dataset`` (the input is never mutated).

    Faults apply in profile order; each ``(fault, drive)`` pair draws
    from its own child stream keyed by the drive's serial, so corruption
    is stable under reordering or subsetting of the fleet.
    """
    profile = resolve_profile(profile)
    root = as_rng(seed)
    drives: list[DriveRecord] = list(dataset.drives)
    for fault_index, fault in enumerate(profile.faults):
        fault_rng = spawn_child(root, fault_index)
        drives = [
            fault.apply_drive(drive, spawn_child(fault_rng, _serial_key(drive.serial)))
            for drive in drives
        ]
    return SmartDataset(drives)


def inject_stream(
    events: Sequence[StreamEvent],
    profile: Union[str, FaultProfile],
    *,
    seed: RandomState = 0,
) -> list[StreamEvent]:
    """A corrupted copy of a replayed tick list.

    Ordering faults (out-of-order, duplicate ticks) only exist at this
    layer; value faults apply exactly as they do at dataset level.
    """
    profile = resolve_profile(profile)
    root = as_rng(seed)
    out = list(events)
    for fault_index, fault in enumerate(profile.faults):
        out = fault.apply_stream(out, spawn_child(root, fault_index))
    return out


def dataset_events(
    dataset: SmartDataset, *, drives: Optional[Sequence[DriveRecord]] = None
) -> list[StreamEvent]:
    """Replay a fleet as the tick stream a collector would emit.

    Ticks are ordered by hour (ties broken by serial), one per recorded
    sample, exactly what :meth:`FleetMonitor.observe` expects to ingest.
    """
    ticks: list[StreamEvent] = []
    for drive in (dataset.drives if drives is None else drives):
        for hour, values in zip(drive.hours, drive.values):
            ticks.append(StreamEvent.from_arrays(drive.serial, hour, values))
    ticks.sort(key=lambda tick: (tick.hour, tick.serial))
    return ticks


def replay_stream(monitor, events: Sequence[StreamEvent]) -> list:
    """Feed ticks through a :class:`FleetMonitor` and finalize.

    Returns every alert the replay raised (streaming plus the
    short-history flush).  The monitor's quarantine gate absorbs
    malformed ticks; inspect ``monitor.faults`` and
    ``monitor.degraded_drives()`` afterwards for what was excluded.
    """
    alerts = []
    for event in events:
        alert = monitor.observe(event.serial, event.hour, event.values_array())
        if alert is not None:
            alerts.append(alert)
    alerts.extend(monitor.finalize())
    return alerts


def corrupted_cell_fraction(clean: SmartDataset, dirty: SmartDataset) -> float:
    """Fraction of value cells that differ between two aligned fleets.

    Truncated histories count every removed cell as corrupted.  Used by
    the chaos suite to check a profile stays within its corruption
    budget.
    """
    clean_by_serial = {drive.serial: drive for drive in clean.drives}
    total = changed = 0
    for dirty_drive in dirty.drives:
        clean_drive = clean_by_serial[dirty_drive.serial]
        total += clean_drive.values.size
        kept = dirty_drive.values.shape[0]
        a = clean_drive.values[:kept]
        b = dirty_drive.values
        same = (a == b) | (np.isnan(a) & np.isnan(b))
        changed += int((~same).sum())
        changed += (clean_drive.values.shape[0] - kept) * clean_drive.values.shape[1]
    return changed / total if total else 0.0
