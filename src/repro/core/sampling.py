"""Training-set assembly from a fleet split (Section V-A1's protocol).

Good training samples: a few random recorded samples per good drive.
Failed training samples: every recorded sample within the failed time
window (the last n hours before the failure).  Labels are +1 / -1 and
the failed class is re-weighted to the configured share of the training
mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import FAILED_LABEL, GOOD_LABEL, SamplingConfig
from repro.detection.evaluator import DriveScoreSeries
from repro.observability import get_registry
from repro.features.vectorize import FeatureExtractor
from repro.smart.drive import DriveRecord
from repro.tree.classification import weights_for_priors
from repro.utils.rng import as_rng, spawn_child


@dataclass(frozen=True)
class TrainingSet:
    """Feature matrix, labels and class-share weights ready for fitting."""

    X: np.ndarray
    y: np.ndarray
    sample_weight: Optional[np.ndarray]
    feature_names: tuple[str, ...]

    @property
    def n_failed(self) -> int:
        return int(np.sum(self.y == FAILED_LABEL))

    @property
    def n_good(self) -> int:
        return int(np.sum(self.y == GOOD_LABEL))


def _usable_rows(matrix: np.ndarray) -> np.ndarray:
    """Indices of rows with at least one finite feature."""
    return np.nonzero(np.any(np.isfinite(matrix), axis=1))[0]


def good_training_rows(
    extractor: FeatureExtractor,
    drives: Sequence[DriveRecord],
    per_drive: int,
    seed,
) -> np.ndarray:
    """Random recorded samples per good drive, stacked."""
    rng = as_rng(seed)
    blocks = []
    for key, drive in enumerate(drives):
        matrix = extractor.extract(drive)
        usable = _usable_rows(matrix)
        if usable.size == 0:
            continue
        take = min(per_drive, usable.size)
        chosen = spawn_child(rng, key).choice(usable, size=take, replace=False)
        blocks.append(matrix[np.sort(chosen)])
    if not blocks:
        return np.empty((0, len(extractor)))
    return np.vstack(blocks)


def failed_training_rows(
    extractor: FeatureExtractor,
    drives: Sequence[DriveRecord],
    window_hours: float,
) -> np.ndarray:
    """Every recorded sample within each failed drive's time window."""
    blocks = []
    for drive in drives:
        window = drive.window_before_failure(window_hours)
        if window.size == 0:
            continue
        matrix = extractor.extract_rows(drive, window)
        usable = _usable_rows(matrix)
        if usable.size:
            blocks.append(matrix[usable])
    if not blocks:
        return np.empty((0, len(extractor)))
    return np.vstack(blocks)


def build_training_set(
    extractor: FeatureExtractor,
    train_good: Sequence[DriveRecord],
    train_failed: Sequence[DriveRecord],
    sampling: SamplingConfig,
    *,
    failed_share: Optional[float] = None,
) -> TrainingSet:
    """Assemble (X, y, weights) per the paper's training protocol.

    ``failed_share`` re-weights the classes so failed samples carry that
    fraction of the total training mass (``None`` leaves raw weights).
    """
    good = good_training_rows(
        extractor, train_good, sampling.good_samples_per_drive, sampling.seed
    )
    failed = failed_training_rows(
        extractor, train_failed, sampling.failed_window_hours
    )
    if good.shape[0] == 0 or failed.shape[0] == 0:
        raise ValueError(
            f"training set needs both classes; got {good.shape[0]} good and "
            f"{failed.shape[0]} failed samples"
        )
    X = np.vstack([good, failed])
    y = np.concatenate(
        [
            np.full(good.shape[0], GOOD_LABEL, dtype=int),
            np.full(failed.shape[0], FAILED_LABEL, dtype=int),
        ]
    )
    weight = None
    if failed_share is not None:
        weight = weights_for_priors(
            y, {FAILED_LABEL: failed_share, GOOD_LABEL: 1.0 - failed_share}
        )
    return TrainingSet(
        X=X, y=y, sample_weight=weight, feature_names=tuple(extractor.names)
    )


def score_drives(
    extractor: FeatureExtractor,
    drives: Sequence[DriveRecord],
    score_rows,
) -> list[DriveScoreSeries]:
    """Per-drive chronological score series via a batched scoring callback.

    Every drive's usable feature rows are stacked into one fleet matrix
    and ``score_rows(matrix) -> scores`` is invoked exactly once — the
    compiled tree backend then routes the whole fleet in a single
    vectorised pass instead of paying per-drive call overhead.  Rows
    with no finite feature (missed samples) surface as NaN scores for
    the voting detectors to skip.
    """
    matrices = [extractor.extract(drive) for drive in drives]
    usables = [_usable_rows(matrix) for matrix in matrices]
    blocks = [
        matrix[usable] for matrix, usable in zip(matrices, usables) if usable.size
    ]
    registry = get_registry()
    registry.counter("score.fleet_calls", help="stacked-fleet scoring passes").inc()
    registry.counter("score.fleet_drives", help="drives scored").inc(len(drives))
    registry.counter("score.fleet_rows", help="usable rows stacked").inc(
        sum(block.shape[0] for block in blocks)
    )
    if blocks:
        fleet_scores = np.asarray(score_rows(np.vstack(blocks)), dtype=float)
        if fleet_scores.shape != (sum(block.shape[0] for block in blocks),):
            raise ValueError(
                f"score_rows returned shape {fleet_scores.shape} for "
                f"{sum(block.shape[0] for block in blocks)} stacked rows"
            )
        bounds = np.cumsum([block.shape[0] for block in blocks])[:-1]
        chunks = iter(np.split(fleet_scores, bounds))
    series = []
    for drive, matrix, usable in zip(drives, matrices, usables):
        scores = np.full(matrix.shape[0], np.nan)
        if usable.size:
            scores[usable] = next(chunks)
        series.append(
            DriveScoreSeries(
                serial=drive.serial,
                failed=drive.failed,
                hours=drive.hours,
                scores=scores,
                failure_hour=drive.failure_hour,
            )
        )
    return series
