"""End-to-end drive failure predictors (the library's primary API).

:class:`DriveFailurePredictor` is the paper's CT pipeline: feature
extraction -> the Section V-A1 sampling protocol -> a weighted, loss-
aware classification tree -> voting-based drive-level detection.
:class:`AnnFailurePredictor` is the identical pipeline around the BP ANN
control model.  Both share the same ``fit(split)`` / ``evaluate(split)``
surface so every experiment driver treats them interchangeably.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ann.network import BPNeuralNetwork
from repro.core.config import (
    FAILED_LABEL,
    GOOD_LABEL,
    AnnConfig,
    CTConfig,
    resolve_features,
)
from repro.core.sampling import build_training_set, score_drives
from repro.detection.evaluator import (
    DriveScoreSeries,
    evaluate_detection,
    roc_over_voters,
)
from repro.detection.metrics import DetectionResult, RocPoint
from repro.detection.voting import MajorityVoteDetector
from repro.features.vectorize import FeatureExtractor
from repro.smart.dataset import TrainTestSplit
from repro.smart.drive import DriveRecord
from repro.tree.classification import ClassificationTree
from repro.tree.export import export_text, failure_signature


class _PipelineBase:
    """Shared scoring/evaluation plumbing over a fitted sample model.

    Fleet scoring is batched end to end: ``score_drives`` stacks every
    drive's usable samples into one matrix and ``_score_rows`` sees a
    single call, which the compiled tree backend turns into one
    vectorised routing pass over the whole fleet.
    """

    def __init__(self) -> None:
        self.extractor: Optional[FeatureExtractor] = None

    def _check_fitted(self) -> FeatureExtractor:
        if self.extractor is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        return self.extractor

    def _score_rows(self, rows: np.ndarray) -> np.ndarray:
        """Score a stacked sample matrix (one call per fleet, not per drive)."""
        raise NotImplementedError

    def score_drive(self, drive: DriveRecord) -> DriveScoreSeries:
        """Chronological per-sample class labels for one drive."""
        return self.score_drives([drive])[0]

    def score_drives(self, drives: Sequence[DriveRecord]) -> list[DriveScoreSeries]:
        """Chronological per-sample class labels for many drives.

        All drives are scored by one batched model call; see
        :func:`repro.core.sampling.score_drives`.
        """
        extractor = self._check_fitted()
        return score_drives(extractor, drives, self._score_rows)

    def evaluate(
        self, split: TrainTestSplit, *, n_voters: int = 1
    ) -> DetectionResult:
        """FDR/FAR/TIA on the split's test drives with an N-voter detector."""
        series = self.score_drives(list(split.test_good) + list(split.test_failed))
        detector = MajorityVoteDetector(n_voters=n_voters, failed_label=FAILED_LABEL)
        return evaluate_detection(series, detector)

    def roc(
        self, split: TrainTestSplit, voters: Sequence[int]
    ) -> list[RocPoint]:
        """The Figure 2/5 voter sweep on the split's test drives."""
        series = self.score_drives(list(split.test_good) + list(split.test_failed))
        return roc_over_voters(series, voters, failed_label=FAILED_LABEL)


class DriveFailurePredictor(_PipelineBase):
    """The paper's Classification Tree failure predictor.

    Example:
        >>> from repro.smart import SmartDataset, default_fleet_config
        >>> config = default_fleet_config(w_good=60, w_failed=8, q_good=0, q_failed=0)
        >>> split = SmartDataset.generate(config).split(seed=1)
        >>> predictor = DriveFailurePredictor(CTConfig(minsplit=4, minbucket=2))
        >>> result = predictor.fit(split).evaluate(split, n_voters=3)
        >>> 0.0 <= result.far <= 1.0
        True
    """

    def __init__(self, config: CTConfig | None = None):
        super().__init__()
        self.config = config or CTConfig()
        self.tree_: Optional[ClassificationTree] = None

    def fit(self, split: TrainTestSplit) -> "DriveFailurePredictor":
        """Fit on the split's training drives per the paper's protocol."""
        features = resolve_features(self.config.features)
        self.extractor = FeatureExtractor(features)
        training = build_training_set(
            self.extractor,
            split.train_good,
            split.train_failed,
            self.config.sampling,
            failed_share=self.config.failed_share,
        )
        # Loss matrix in sorted-class order ([-1 failed, +1 good]): a
        # false alarm (good predicted failed) costs `false_alarm_loss_weight`
        # times a missed detection.
        loss = [
            [0.0, 1.0],
            [self.config.false_alarm_loss_weight, 0.0],
        ]
        self.tree_ = ClassificationTree(
            minsplit=self.config.minsplit,
            minbucket=self.config.minbucket,
            cp=self.config.cp,
            criterion=self.config.criterion,
            loss_matrix=loss,
            max_depth=self.config.max_depth,
            n_surrogates=self.config.n_surrogates,
        )
        self.tree_.fit(training.X, training.y, sample_weight=training.sample_weight)
        return self

    def _score_rows(self, rows: np.ndarray) -> np.ndarray:
        return self.tree_.predict(rows)

    def explain(self) -> str:
        """Figure-1-style rendering of the fitted tree."""
        self._check_fitted()
        return export_text(self.tree_, self.extractor.names)

    def failure_attributes(self, top: int = 5) -> list[str]:
        """The attributes most implicated in failed leaves (Section V-B1)."""
        self._check_fitted()
        return failure_signature(
            self.tree_, self.extractor.names, failed_label=FAILED_LABEL, top=top
        )

    def feature_importances(self) -> dict[str, float]:
        """Gain-based importances keyed by feature name."""
        self._check_fitted()
        values = self.tree_.feature_importances()
        return dict(zip(self.extractor.names, values.tolist()))


class GenericFailurePredictor(_PipelineBase):
    """The same pipeline around any fit/predict sample classifier.

    Lets alternative models — the random forest and AdaBoost extensions,
    or anything with ``fit(X, y, sample_weight=...)`` and
    ``predict(X) -> labels`` — reuse the paper's sampling protocol and
    drive-level evaluation unchanged.

    Args:
        model_factory: Zero-argument callable building a fresh model.
        features: Feature set name or explicit list.
        sampling: Sample-selection protocol (paper defaults).
        failed_share: Failed-class share of the training mass, or
            ``None`` for raw weights.
    """

    def __init__(
        self,
        model_factory,
        *,
        features="critical-13",
        sampling: Optional["SamplingConfig"] = None,
        failed_share: Optional[float] = 0.2,
    ):
        super().__init__()
        from repro.core.config import SamplingConfig as _SamplingConfig

        self.model_factory = model_factory
        self.features = features
        self.sampling = sampling or _SamplingConfig()
        self.failed_share = failed_share
        self.model_ = None

    def fit(self, split: TrainTestSplit) -> "GenericFailurePredictor":
        """Fit the wrapped model on the split's training drives."""
        self.extractor = FeatureExtractor(resolve_features(self.features))
        training = build_training_set(
            self.extractor,
            split.train_good,
            split.train_failed,
            self.sampling,
            failed_share=self.failed_share,
        )
        self.model_ = self.model_factory()
        try:
            self.model_.fit(
                training.X, training.y, sample_weight=training.sample_weight
            )
        except TypeError:
            # Models without weight support (e.g. AdaBoost, which manages
            # its own weights) train on the raw samples.
            self.model_.fit(training.X, training.y)
        return self

    def _score_rows(self, rows: np.ndarray) -> np.ndarray:
        return np.asarray(self.model_.predict(rows), dtype=float)


class AnnFailurePredictor(_PipelineBase):
    """The BP ANN control pipeline (the paper's baseline model)."""

    def __init__(self, config: AnnConfig | None = None):
        super().__init__()
        self.config = config or AnnConfig()
        self.network_: Optional[BPNeuralNetwork] = None

    def fit(self, split: TrainTestSplit) -> "AnnFailurePredictor":
        """Fit the network on the split's training drives."""
        features = resolve_features(self.config.features)
        self.extractor = FeatureExtractor(features)
        training = build_training_set(
            self.extractor,
            split.train_good,
            split.train_failed,
            self.config.sampling,
            failed_share=self.config.failed_share,
        )
        hidden = self.config.resolve_hidden_size(len(features))
        self.network_ = BPNeuralNetwork(
            hidden_sizes=(hidden,),
            learning_rate=self.config.learning_rate,
            max_iter=self.config.max_iter,
            batch_size=self.config.batch_size,
            scaling=self.config.scaling,
            seed=self.config.seed,
        )
        self.network_.fit(
            training.X,
            training.y.astype(float),
            sample_weight=training.sample_weight,
        )
        return self

    def _score_rows(self, rows: np.ndarray) -> np.ndarray:
        return self.network_.predict(rows)
