"""Primary public API: configs, sampling protocol and the predictors."""

from repro.core.config import (
    FAILED_LABEL,
    GOOD_LABEL,
    AnnConfig,
    CTConfig,
    RTConfig,
    SamplingConfig,
    resolve_features,
)
from repro.core.fleet import FleetPredictor
from repro.core.predictor import (
    AnnFailurePredictor,
    DriveFailurePredictor,
    GenericFailurePredictor,
)
from repro.core.sampling import (
    TrainingSet,
    build_training_set,
    failed_training_rows,
    good_training_rows,
    score_drives,
)

__all__ = [
    "AnnConfig",
    "AnnFailurePredictor",
    "CTConfig",
    "DriveFailurePredictor",
    "FleetPredictor",
    "GenericFailurePredictor",
    "FAILED_LABEL",
    "GOOD_LABEL",
    "RTConfig",
    "SamplingConfig",
    "TrainingSet",
    "build_training_set",
    "failed_training_rows",
    "good_training_rows",
    "resolve_features",
    "score_drives",
]
