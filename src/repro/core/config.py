"""Configuration for the end-to-end prediction pipelines.

Defaults follow the paper's reported settings: the critical-13 feature
set, a 168-hour failed time window for the CT model (Table IV's best
point) and 12 hours for the BP ANN, 3 good samples per drive, the
failed class re-weighted to a 20% share, false alarms penalised 10x,
and rpart controls Minsplit=20 / Minbucket=7 (the paper's CP=0.001 is
rpart-risk-scaled; our entropy-scaled equivalent is 0.004 — see the
:class:`CTConfig` docstring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.features.selection import get_feature_set
from repro.features.vectorize import Feature
from repro.utils.rng import RandomState
from repro.utils.validation import check_fraction, check_positive

#: Labels used throughout the library (and the paper): good and failed.
GOOD_LABEL = 1
FAILED_LABEL = -1

FeatureSpec = Union[str, Sequence[Feature]]


def resolve_features(spec: FeatureSpec) -> list[Feature]:
    """Accept a named feature set or an explicit feature list."""
    if isinstance(spec, str):
        return get_feature_set(spec)
    features = list(spec)
    if not features:
        raise ValueError("feature specification must not be empty")
    return features


@dataclass(frozen=True)
class SamplingConfig:
    """How training samples are drawn from a split.

    Attributes:
        failed_window_hours: The failed time window n — only the last n
            hours of a failed drive's history become failed samples.
        good_samples_per_drive: Random good samples kept per good drive
            (paper: 3, "to eliminate the bias of a single drive's sample
            in a particular hour").
        seed: Seed for the good-sample draw.
    """

    failed_window_hours: float = 168.0
    good_samples_per_drive: int = 3
    seed: RandomState = 17

    def __post_init__(self) -> None:
        check_positive("failed_window_hours", self.failed_window_hours)
        check_positive("good_samples_per_drive", self.good_samples_per_drive)


@dataclass(frozen=True)
class CTConfig:
    """Classification-tree pipeline settings (Section V-A defaults).

    Note on ``cp``: the paper quotes rpart's ComplexityParameter=0.001,
    which is normalised by misclassification *risk*; our trees normalise
    by root entropy instead, where 0.004 plays the equivalent role (the
    same operating region of tree size and false-alarm behaviour).
    """

    features: FeatureSpec = "critical-13"
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    failed_share: float = 0.2
    false_alarm_loss_weight: float = 10.0
    minsplit: int = 20
    minbucket: int = 7
    cp: float = 0.004
    criterion: str = "entropy"
    max_depth: int | None = None
    n_surrogates: int = 0

    def __post_init__(self) -> None:
        check_fraction("failed_share", self.failed_share, inclusive=False)
        check_positive("false_alarm_loss_weight", self.false_alarm_loss_weight)


@dataclass(frozen=True)
class AnnConfig:
    """BP ANN pipeline settings (Section V-A2: lr 0.1, 400 iterations).

    ``hidden_size=None`` picks the paper's width for the feature count
    (19->30, 13->13, 12->20) and falls back to the feature count itself.
    """

    features: FeatureSpec = "critical-13"
    sampling: SamplingConfig = field(
        default_factory=lambda: SamplingConfig(failed_window_hours=12.0)
    )
    hidden_size: int | None = None
    learning_rate: float = 0.1
    max_iter: int = 400
    batch_size: int | None = None
    scaling: str = "max_abs"
    failed_share: float = 0.2
    seed: RandomState = 29

    _PAPER_WIDTHS = {19: 30, 13: 13, 12: 20}

    def resolve_hidden_size(self, n_features: int) -> int:
        if self.hidden_size is not None:
            return int(self.hidden_size)
        return self._PAPER_WIDTHS.get(n_features, n_features)


@dataclass(frozen=True)
class RTConfig:
    """Regression-tree health-degree pipeline settings (Section V-C).

    Attributes:
        targets: ``"health"`` for deterioration-window degrees or
            ``"binary"`` for the +/-1 control model of Figure 10.
        window_mode: ``"personalized"`` derives each failed drive's
            deterioration window from a CT model (formula 6, the paper's
            proposal); ``"global"`` gives every drive the fallback window
            (formula 5, the simpler variant the paper reports as worse).
        failed_samples_per_drive: Evenly-spaced failed samples per drive
            within its deterioration window (paper: 12).
        fallback_window_hours: Global window, also used for drives the
            CT model missed (paper: 24).
        regressor_factory: Optional zero-argument callable building the
            health regressor (anything with ``fit(X, y)``/``predict``).
            ``None`` builds the paper's single RegressionTree from the
            minsplit/minbucket/cp fields; pass e.g.
            ``lambda: RandomForestRegressor(...)`` for the bagged
            health-degree variant (the paper's named future work).
    """

    features: FeatureSpec = "critical-13"
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    targets: str = "health"
    window_mode: str = "personalized"
    failed_samples_per_drive: int = 12
    fallback_window_hours: float = 24.0
    minsplit: int = 20
    minbucket: int = 7
    cp: float = 0.004
    ct: CTConfig = field(default_factory=CTConfig)
    regressor_factory: object = None

    def __post_init__(self) -> None:
        if self.regressor_factory is not None and not callable(
            self.regressor_factory
        ):
            raise ValueError("regressor_factory must be callable or None")
        if self.targets not in ("health", "binary"):
            raise ValueError(
                f"targets must be 'health' or 'binary', got {self.targets!r}"
            )
        if self.window_mode not in ("personalized", "global"):
            raise ValueError(
                f"window_mode must be 'personalized' or 'global', "
                f"got {self.window_mode!r}"
            )
        check_positive("failed_samples_per_drive", self.failed_samples_per_drive)
        check_positive("fallback_window_hours", self.fallback_window_hours)
