"""Per-family fleet prediction (one model per drive family).

The paper separates everything by drive family: "hard drive models,
manufacturers and other environment factors can influence the
statistical behavior of failures ... the SMART dataset is separated by
drive model when building and evaluating our models", and Section V-B1
shows the families' failure signatures genuinely differ.  A deployment
therefore runs one fitted model per family and routes each drive to its
family's model — which is what :class:`FleetPredictor` packages:

* ``fit(dataset)`` splits per family (the Section V-A1 protocol inside
  each) and fits one pipeline per family via a factory;
* scoring/evaluation route drives by their ``family`` attribute;
* families unseen at fit time are reported, not silently mis-scored.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.core.config import CTConfig
from repro.core.predictor import DriveFailurePredictor
from repro.detection.evaluator import (
    DriveScoreSeries,
    evaluate_detection,
)
from repro.detection.metrics import DetectionResult
from repro.detection.voting import MajorityVoteDetector
from repro.observability import get_registry
from repro.smart.dataset import SmartDataset, TrainTestSplit
from repro.smart.drive import DriveRecord
from repro.utils.rng import RandomState

#: Builds a fresh pipeline (fit(split)/score_drives/evaluate surface).
ModelFactory = Callable[[], object]


class FleetPredictor:
    """One prediction model per drive family, routed by ``drive.family``.

    Args:
        model_factory: Zero-argument callable building a fresh pipeline
            per family (default: the paper's CT pipeline).
        split_seed: Seed for each family's train/test split.

    Example:
        >>> from repro.smart import SmartDataset, default_fleet_config
        >>> fleet = SmartDataset.generate(default_fleet_config(
        ...     w_good=60, w_failed=10, q_good=40, q_failed=8))
        >>> from repro.core.config import CTConfig
        >>> predictor = FleetPredictor(
        ...     lambda: DriveFailurePredictor(CTConfig(minsplit=4, minbucket=2)))
        >>> sorted(predictor.fit(fleet).families())
        ['Q', 'W']
    """

    def __init__(
        self,
        model_factory: Optional[ModelFactory] = None,
        *,
        split_seed: RandomState = 11,
    ):
        self.model_factory = model_factory or (
            lambda: DriveFailurePredictor(CTConfig())
        )
        self.split_seed = split_seed
        self.models_: dict[str, object] = {}
        self.splits_: dict[str, TrainTestSplit] = {}

    # -- fitting ------------------------------------------------------------------

    def fit(self, dataset: SmartDataset) -> "FleetPredictor":
        """Split and fit one model per family present in ``dataset``."""
        self.models_ = {}
        self.splits_ = {}
        for family in dataset.families():
            subset = dataset.filter_family(family)
            if not subset.failed_drives or not subset.good_drives:
                # A family without both classes cannot be trained; skip
                # it (its drives will be reported as unroutable).
                continue
            split = subset.split(seed=self.split_seed)
            self.models_[family] = self.model_factory().fit(split)
            self.splits_[family] = split
            get_registry().counter(
                "fleet.families_fitted", help="family models fitted"
            ).inc()
        if not self.models_:
            raise ValueError(
                "no family had both good and failed drives; nothing to fit"
            )
        return self

    def _check_fitted(self) -> None:
        if not self.models_:
            raise RuntimeError("FleetPredictor is not fitted; call fit() first")

    def families(self) -> list[str]:
        """Families with a fitted model."""
        self._check_fitted()
        return sorted(self.models_)

    def model_for(self, family: str) -> object:
        """The fitted pipeline for one family."""
        self._check_fitted()
        try:
            return self.models_[family]
        except KeyError:
            raise ValueError(
                f"no model for family {family!r}; fitted: {self.families()}"
            ) from None

    # -- routing ------------------------------------------------------------------

    def partition_by_family(
        self, drives: Sequence[DriveRecord]
    ) -> tuple[dict[str, list[DriveRecord]], list[DriveRecord]]:
        """Group drives by fitted family; the second item is unroutable."""
        self._check_fitted()
        routed: dict[str, list[DriveRecord]] = {f: [] for f in self.models_}
        unroutable: list[DriveRecord] = []
        for drive in drives:
            if drive.family in routed:
                routed[drive.family].append(drive)
            else:
                unroutable.append(drive)
        return routed, unroutable

    def score_drives(
        self, drives: Sequence[DriveRecord]
    ) -> tuple[list[DriveScoreSeries], list[DriveRecord]]:
        """Score every routable drive with its family's model.

        Returns ``(series, unroutable_drives)``; callers decide how to
        treat drives of families never seen at fit time.
        """
        routed, unroutable = self.partition_by_family(drives)
        series: list[DriveScoreSeries] = []
        for family, family_drives in routed.items():
            if family_drives:
                series.extend(self.models_[family].score_drives(family_drives))
        registry = get_registry()
        registry.counter(
            "fleet.drives_scored", help="drives routed to a family model"
        ).inc(len(series))
        registry.counter(
            "fleet.unroutable_drives", help="drives of unseen families"
        ).inc(len(unroutable))
        return series, unroutable

    # -- evaluation ------------------------------------------------------------------

    def evaluate(
        self, *, n_voters: int = 1
    ) -> dict[str, DetectionResult]:
        """Per-family test-set results, plus a ``"fleet"`` aggregate."""
        self._check_fitted()
        detector = MajorityVoteDetector(n_voters=n_voters)
        all_series: list[DriveScoreSeries] = []
        results: dict[str, DetectionResult] = {}
        for family, model in self.models_.items():
            split = self.splits_[family]
            series = model.score_drives(
                list(split.test_good) + list(split.test_failed)
            )
            all_series.extend(series)
            results[family] = evaluate_detection(series, detector)
        results["fleet"] = evaluate_detection(all_series, detector)
        return results
