"""Compiled flat-array tree backend for fleet-scale scoring.

A fitted CART is, logically, the paper's Figure-1 object graph of
:class:`~repro.tree.node.Node` instances — ideal for rendering, rule
mining and introspection, but the wrong substrate for scoring millions
of drive-hours: every prediction hops Python objects node by node.

:class:`CompiledTree` flattens a fitted tree into contiguous numpy
arrays (one slot per node, pre-order):

* ``feature`` / ``threshold`` — the split, ``feature == -1`` at leaves;
* ``children_left`` / ``children_right`` — child slot indices (-1 at
  leaves);
* ``missing_goes_left`` — NaN fallback routing per node;
* ``node_id`` / ``prediction`` — the paper's Figure-1 node numbering and
  the leaf value;
* ``values`` — an ``(n_nodes, n_outputs)`` matrix holding each node's
  class distribution (classification) or target mean (regression), so
  ``predict_proba`` is a single fancy-index;
* a packed CSR-style surrogate table (``surrogate_offset`` +
  ``surrogate_feature`` / ``surrogate_threshold`` /
  ``surrogate_less_goes_left``) reproducing rpart's missing-value
  routing without per-row Python calls.

Routing is a vectorised subset descent: an explicit stack of
(node, row-subset) pairs where each internal node costs one contiguous
column gather, one scalar compare and two boolean compressions — a few
flat numpy passes per node actually visited, never a Python frame per
row.  The semantics — including NaN/inf handling and surrogate
fallbacks — are bit-identical to the node-walk reference implementation
(``backend="node"``), which the golden-equivalence test suite enforces.

:class:`CompiledForest` stacks the members of an ensemble into one flat
arena (child indices offset per member) and scores all of them against
one shared :class:`_RoutingContext` — the transposed matrix and
per-column missing masks are computed once and reused by every member —
which is what makes 50-tree forest scoring over a whole fleet's sample
matrix one call.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.observability import get_registry, get_tracer
from repro.observability.metrics import ROW_BUCKETS
from repro.tree.node import Node
from repro.tree.surrogates import SurrogateSplit

#: Sentinel used in ``feature``/``children_*`` arrays at leaf slots.
LEAF = -1


def _observe_batch(registry, n_rows: int, n_trees: int, elapsed: float) -> None:
    """Record one compiled batch routing call (enabled registries only)."""
    registry.counter("score.batches", help="compiled batch routing calls").inc()
    registry.counter("score.rows", help="rows routed").inc(n_rows * n_trees)
    registry.histogram(
        "score.batch_rows", ROW_BUCKETS, unit="rows", help="rows per batch call"
    ).observe(n_rows)
    registry.histogram(
        "score.batch_seconds", unit="seconds", help="batch routing wall time"
    ).observe(elapsed)


class _RoutingContext:
    """Per-matrix precomputation shared by every tree in a batch call.

    Columns are transposed once into contiguous layout (descent gathers
    one column at a time), and each column's missing mask is computed
    lazily on first use — ``None`` marks an all-finite column so clean
    columns never pay a missing pass.  A forest builds one context and
    routes all members through it.
    """

    def __init__(self, X: np.ndarray):
        self.X = X
        self.columns = np.ascontiguousarray(X.T)
        self._missing: dict[int, Optional[np.ndarray]] = {}

    def missing_mask(self, feature: int) -> Optional[np.ndarray]:
        """Cached non-finite mask for a column, ``None`` when all finite."""
        mask = self._missing.get(feature, False)
        if mask is False:
            column_missing = ~np.isfinite(self.columns[feature])
            mask = column_missing if column_missing.any() else None
            self._missing[feature] = mask
        return mask


class _FlatArrays:
    """The shared flat representation + vectorised subset router.

    Routing partitions a row subset down the tree with an explicit
    (node, rows) stack; each internal node visited costs one contiguous
    column gather and two boolean compressions, with missing-value
    handling hoisted out entirely for columns that contain no NaN/inf.
    """

    feature: np.ndarray
    threshold: np.ndarray
    children_left: np.ndarray
    children_right: np.ndarray
    missing_goes_left: np.ndarray
    node_id: np.ndarray
    prediction: np.ndarray
    values: np.ndarray
    surrogate_offset: np.ndarray
    surrogate_feature: np.ndarray
    surrogate_threshold: np.ndarray
    surrogate_less_goes_left: np.ndarray
    is_leaf: np.ndarray
    depth: int

    @property
    def n_nodes(self) -> int:
        """Total slot count (internal nodes plus leaves)."""
        return int(self.feature.shape[0])

    def _finalize(self, depth: Optional[int] = None) -> None:
        """Derive the routing-only fields from the canonical arrays.

        ``is_leaf`` masks leaf slots; ``depth`` is the number of levels
        below the deepest root (0 for a stump).  Pre-order guarantees
        parents precede children, so one forward pass computes levels.
        """
        self.is_leaf = self.feature < 0
        if depth is None:
            level = np.zeros(self.n_nodes, dtype=np.int64)
            for slot in np.nonzero(~self.is_leaf)[0]:
                level[self.children_left[slot]] = level[slot] + 1
                level[self.children_right[slot]] = level[slot] + 1
            depth = int(level.max()) if self.n_nodes else 0
        self.depth = depth

    # -- routing -------------------------------------------------------------

    def _route_subtree(
        self,
        ctx: _RoutingContext,
        root: int,
        rows: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Route ``rows`` from ``root`` down to leaves, writing leaf slots to ``out``.

        Iterative subset descent: each internal node partitions the row
        subset that reached it with its scalar threshold — one contiguous
        column gather, one compare, two compressions — so a batch costs
        ``O(sum of per-level rows)`` flat passes with no per-row Python.
        Rows whose split value is missing take the surrogate/fallback
        path of :meth:`_route_missing_lanes`.
        """
        if self.is_leaf[root]:
            out[rows] = root
            return
        feature = self.feature
        threshold = self.threshold
        children_left = self.children_left
        children_right = self.children_right
        is_leaf = self.is_leaf
        stack = [(root, rows)]
        while stack:
            slot, rows = stack.pop()
            f = int(feature[slot])
            column = ctx.columns[f].take(rows)
            goes_left = column < threshold[slot]
            column_missing = ctx.missing_mask(f)
            if column_missing is not None:
                missing = column_missing.take(rows)
                if missing.any():
                    lanes = np.nonzero(missing)[0]
                    goes_left[lanes] = self._route_missing_lanes(
                        ctx.X,
                        rows[lanes],
                        np.full(lanes.size, slot, dtype=np.int64),
                    )
            for child, child_rows in (
                (int(children_left[slot]), rows[goes_left]),
                (int(children_right[slot]), rows[~goes_left]),
            ):
                if not child_rows.size:
                    continue
                if is_leaf[child]:
                    out[child_rows] = child
                else:
                    stack.append((child, child_rows))

    def _route_missing_lanes(
        self, X: np.ndarray, rows: np.ndarray, nodes: np.ndarray
    ) -> np.ndarray:
        """Surrogate-then-fallback routing for lanes whose primary value is missing.

        Mirrors :func:`repro.tree.surrogates.route_left_with_surrogates`:
        the highest-ranked surrogate with a finite value decides; rows no
        surrogate can place follow ``missing_goes_left``.
        """
        goes_left = self.missing_goes_left[nodes].copy()
        counts = self.surrogate_offset[nodes + 1] - self.surrogate_offset[nodes]
        undecided = np.ones(rows.size, dtype=bool)
        for rank in range(int(counts.max()) if counts.size else 0):
            trying = np.nonzero(undecided & (counts > rank))[0]
            if trying.size == 0:
                break
            slots = self.surrogate_offset[nodes[trying]] + rank
            candidate = X[rows[trying], self.surrogate_feature[slots]]
            finite = np.isfinite(candidate)
            if not finite.any():
                continue
            decided = trying[finite]
            slots = slots[finite]
            goes_less = candidate[finite] < self.surrogate_threshold[slots]
            goes_left[decided] = np.where(
                self.surrogate_less_goes_left[slots], goes_less, ~goes_less
            )
            undecided[decided] = False
        return goes_left

    def _route_row(self, row: np.ndarray, slot: int) -> int:
        """Advance a single row one level from internal node ``slot``."""
        value = row[self.feature[slot]]
        if np.isfinite(value):
            goes_left = bool(value < self.threshold[slot])
        else:
            goes_left = bool(self.missing_goes_left[slot])
            for rank in range(
                int(self.surrogate_offset[slot]), int(self.surrogate_offset[slot + 1])
            ):
                candidate = row[self.surrogate_feature[rank]]
                if np.isfinite(candidate):
                    goes_less = bool(candidate < self.surrogate_threshold[rank])
                    goes_left = (
                        goes_less if self.surrogate_less_goes_left[rank] else not goes_less
                    )
                    break
        return int(self.children_left[slot] if goes_left else self.children_right[slot])


class CompiledTree(_FlatArrays):
    """A fitted tree flattened into contiguous arrays (see module docs).

    Build with :meth:`from_node`; all inference methods take an already
    validated ``(n_rows, n_features)`` float matrix.
    """

    def __init__(
        self,
        *,
        feature: np.ndarray,
        threshold: np.ndarray,
        children_left: np.ndarray,
        children_right: np.ndarray,
        missing_goes_left: np.ndarray,
        node_id: np.ndarray,
        prediction: np.ndarray,
        values: np.ndarray,
        surrogate_offset: np.ndarray,
        surrogate_feature: np.ndarray,
        surrogate_threshold: np.ndarray,
        surrogate_less_goes_left: np.ndarray,
    ):
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=float)
        self.children_left = np.asarray(children_left, dtype=np.int64)
        self.children_right = np.asarray(children_right, dtype=np.int64)
        self.missing_goes_left = np.asarray(missing_goes_left, dtype=bool)
        self.node_id = np.asarray(node_id, dtype=np.int64)
        self.prediction = np.asarray(prediction, dtype=float)
        self.values = np.asarray(values, dtype=float)
        self.surrogate_offset = np.asarray(surrogate_offset, dtype=np.int64)
        self.surrogate_feature = np.asarray(surrogate_feature, dtype=np.int64)
        self.surrogate_threshold = np.asarray(surrogate_threshold, dtype=float)
        self.surrogate_less_goes_left = np.asarray(surrogate_less_goes_left, dtype=bool)
        self._validate()
        self._finalize()

    def _validate(self) -> None:
        n = self.n_nodes
        if n == 0:
            raise ValueError("a compiled tree needs at least one node")
        for name in ("threshold", "children_left", "children_right",
                     "missing_goes_left", "node_id", "prediction"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must have shape ({n},)")
        if self.values.ndim != 2 or self.values.shape[0] != n:
            raise ValueError(f"values must be 2-D with {n} rows")
        if self.surrogate_offset.shape != (n + 1,):
            raise ValueError(f"surrogate_offset must have shape ({n + 1},)")
        internal = self.feature >= 0
        children = np.concatenate(
            [self.children_left[internal], self.children_right[internal]]
        )
        if internal.any() and (children.min() < 0 or children.max() >= n):
            raise ValueError("child indices out of range")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_node(cls, root: Node) -> "CompiledTree":
        """Flatten a fitted :class:`Node` graph (pre-order)."""
        nodes: list[Node] = list(root.iter_nodes())
        n = len(nodes)
        slot_of = {id(node): slot for slot, node in enumerate(nodes)}
        n_outputs = (
            len(root.class_distribution) if root.class_distribution is not None else 1
        )

        feature = np.full(n, LEAF, dtype=np.int64)
        threshold = np.full(n, np.nan)
        children_left = np.full(n, LEAF, dtype=np.int64)
        children_right = np.full(n, LEAF, dtype=np.int64)
        missing_goes_left = np.zeros(n, dtype=bool)
        node_id = np.empty(n, dtype=np.int64)
        prediction = np.empty(n)
        values = np.empty((n, n_outputs))
        surrogate_counts = np.zeros(n, dtype=np.int64)
        surrogate_rows: list[SurrogateSplit] = []

        for slot, node in enumerate(nodes):
            node_id[slot] = node.node_id
            prediction[slot] = node.prediction
            if node.class_distribution is not None:
                values[slot] = node.class_distribution
            else:
                values[slot] = node.prediction
            missing_goes_left[slot] = node.missing_goes_left
            if node.is_leaf:
                continue
            feature[slot] = node.feature
            threshold[slot] = node.threshold
            children_left[slot] = slot_of[id(node.left)]
            children_right[slot] = slot_of[id(node.right)]
            surrogate_counts[slot] = len(node.surrogates)
            surrogate_rows.extend(node.surrogates)

        surrogate_offset = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(surrogate_counts, out=surrogate_offset[1:])
        return cls(
            feature=feature,
            threshold=threshold,
            children_left=children_left,
            children_right=children_right,
            missing_goes_left=missing_goes_left,
            node_id=node_id,
            prediction=prediction,
            values=values,
            surrogate_offset=surrogate_offset,
            surrogate_feature=np.array(
                [s.feature for s in surrogate_rows], dtype=np.int64
            ),
            surrogate_threshold=np.array(
                [s.threshold for s in surrogate_rows], dtype=float
            ),
            surrogate_less_goes_left=np.array(
                [s.less_goes_left for s in surrogate_rows], dtype=bool
            ),
        )

    # -- inference -----------------------------------------------------------

    def apply_slots(self, X: np.ndarray) -> np.ndarray:
        """Flat leaf slot (array index) each row lands in."""
        registry = get_registry()
        tracer = get_tracer()
        if not registry.enabled and not tracer.enabled:
            return self._apply_slots_impl(X)
        start = perf_counter()
        with tracer.span(
            "score.batch", category="score", n_rows=int(X.shape[0]), n_trees=1
        ):
            out = self._apply_slots_impl(X)
        if registry.enabled:
            _observe_batch(registry, X.shape[0], 1, perf_counter() - start)
        return out

    def _apply_slots_impl(self, X: np.ndarray) -> np.ndarray:
        n_rows = X.shape[0]
        out = np.empty(n_rows, dtype=np.int64)
        self._route_subtree(
            _RoutingContext(X), 0, np.arange(n_rows, dtype=np.intp), out
        )
        return out

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Figure-1 ``node_id`` of the leaf each row lands in."""
        return self.node_id[self.apply_slots(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf ``prediction`` for each row (labels or target means)."""
        return self.prediction[self.apply_slots(X)]

    def predict_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value rows — class distributions or ``(n, 1)`` means."""
        return self.values[self.apply_slots(X)]

    def decision_path_slots(self, row: np.ndarray) -> list[int]:
        """Root-to-leaf flat slot sequence for one 1-D sample."""
        slot = 0
        path = [0]
        while self.feature[slot] >= 0:
            slot = self._route_row(row, slot)
            path.append(slot)
        return path

    def decision_path_ids(self, row: np.ndarray) -> list[int]:
        """Root-to-leaf Figure-1 ``node_id`` sequence for one 1-D sample."""
        return [int(self.node_id[slot]) for slot in self.decision_path_slots(row)]

    # -- persistence ---------------------------------------------------------

    _ARRAY_FIELDS = (
        "feature",
        "threshold",
        "children_left",
        "children_right",
        "missing_goes_left",
        "node_id",
        "prediction",
        "values",
        "surrogate_offset",
        "surrogate_feature",
        "surrogate_threshold",
        "surrogate_less_goes_left",
    )

    def to_dict(self) -> dict:
        """JSON-able dict of the flat arrays (lossless round trip)."""
        return {name: getattr(self, name).tolist() for name in self._ARRAY_FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "CompiledTree":
        """Rebuild from :meth:`to_dict` output."""
        values = np.asarray(payload["values"], dtype=float)
        if values.ndim == 1:  # a single-node tree serialises to a flat list
            values = values.reshape(len(values), 1)
        kwargs = {name: np.asarray(payload[name]) for name in cls._ARRAY_FIELDS}
        kwargs["values"] = values
        return cls(**kwargs)


class CompiledForest(_FlatArrays):
    """Ensemble members stacked into one flat arena for batch scoring.

    Child and surrogate indices of each member are offset into the
    shared arrays; ``roots`` holds each member's root slot.  One
    :meth:`predict_matrix` call routes all ``n_trees * n_rows`` lanes
    through the vectorised level loop.
    """

    def __init__(self, trees: Sequence[CompiledTree]):
        if not trees:
            raise ValueError("CompiledForest needs at least one member tree")
        self.n_trees = len(trees)
        bases = np.cumsum([0] + [t.n_nodes for t in trees])[:-1]
        self.roots = bases.astype(np.int64)
        surrogate_bases = np.cumsum(
            [0] + [t.surrogate_feature.shape[0] for t in trees]
        )[:-1]

        def offset_children(tree: CompiledTree, base: int) -> tuple[np.ndarray, np.ndarray]:
            internal = tree.feature >= 0
            left = np.where(internal, tree.children_left + base, LEAF)
            right = np.where(internal, tree.children_right + base, LEAF)
            return left, right

        lefts, rights = zip(
            *(offset_children(t, b) for t, b in zip(trees, bases))
        )
        self.feature = np.concatenate([t.feature for t in trees])
        self.threshold = np.concatenate([t.threshold for t in trees])
        self.children_left = np.concatenate(lefts)
        self.children_right = np.concatenate(rights)
        self.missing_goes_left = np.concatenate([t.missing_goes_left for t in trees])
        self.node_id = np.concatenate([t.node_id for t in trees])
        self.prediction = np.concatenate([t.prediction for t in trees])
        n_outputs = max(t.values.shape[1] for t in trees)
        if any(t.values.shape[1] != n_outputs for t in trees):
            raise ValueError("member trees disagree on the number of outputs")
        self.values = np.concatenate([t.values for t in trees])
        self.surrogate_offset = np.concatenate(
            [np.asarray([0], dtype=np.int64)]
            + [t.surrogate_offset[1:] + b for t, b in zip(trees, surrogate_bases)]
        )
        self.surrogate_feature = np.concatenate([t.surrogate_feature for t in trees])
        self.surrogate_threshold = np.concatenate(
            [t.surrogate_threshold for t in trees]
        )
        self.surrogate_less_goes_left = np.concatenate(
            [t.surrogate_less_goes_left for t in trees]
        )
        self._finalize(depth=max(t.depth for t in trees))

    def apply_slots(self, X: np.ndarray) -> np.ndarray:
        """Flat leaf slots, shape ``(n_trees, n_rows)``.

        One routing context (transpose + missing masks) is shared by all
        members, so the per-matrix setup is paid once per call rather
        than once per tree.
        """
        registry = get_registry()
        tracer = get_tracer()
        if not registry.enabled and not tracer.enabled:
            return self._apply_slots_impl(X)
        start = perf_counter()
        with tracer.span(
            "score.batch", category="score",
            n_rows=int(X.shape[0]), n_trees=self.n_trees,
        ):
            out = self._apply_slots_impl(X)
        if registry.enabled:
            _observe_batch(registry, X.shape[0], self.n_trees, perf_counter() - start)
        return out

    def _apply_slots_impl(self, X: np.ndarray) -> np.ndarray:
        n_rows = X.shape[0]
        out = np.empty((self.n_trees, n_rows), dtype=np.int64)
        ctx = _RoutingContext(X)
        rows = np.arange(n_rows, dtype=np.intp)
        for member, root in enumerate(self.roots):
            self._route_subtree(ctx, int(root), rows, out[member])
        return out

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-member predictions, shape ``(n_trees, n_rows)``.

        Row ``t`` equals ``trees[t].predict(X)`` exactly, so consumers
        aggregate (vote, average, weight) without re-scoring.
        """
        return self.prediction[self.apply_slots(X)]


def compile_tree(root: Optional[Node]) -> Optional[CompiledTree]:
    """Compile a fitted root, or pass ``None`` through (unfitted trees)."""
    return None if root is None else CompiledTree.from_node(root)
