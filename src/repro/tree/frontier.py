"""Presorted columnar training frontier.

Algorithm 1/2 induction spends its time in the node-level split search,
and the naive transcription re-sorts every feature column at every node
(``O(d * n log n)`` per node).  The classic CART/sklearn remedy is to
argsort each column **once per fit** and then maintain, for every node
on the growth frontier, the per-feature *sorted index partitions*: a
stable boolean partition of the parent's order arrays yields each
child's arrays already sorted, so node-level split search (and surrogate
search) becomes an ``O(d * n)`` scan.

Two invariants make the presorted path bit-identical to the per-node
re-sorting reference:

* **Tie order.**  The root order is a *stable* argsort over rows in
  ascending-index order, and boolean-mask partitioning preserves
  relative order — so at every node, equal feature values appear in
  ascending row-index order, exactly what ``np.argsort(kind="stable")``
  produces on that node's rows (node index sets are always ascending).
* **Missing handling.**  Only rows with a *finite* value (NaN and ±inf
  both count as missing, as everywhere in this codebase) are kept in a
  column's order array, so a node's array for feature ``f`` is exactly
  its finite-``f`` rows in sorted order, mirroring the reference's
  filter-then-sort.

A fully-finite matrix gets the *dense* layout: per-node ``(d, n)``
order/value matrices instead of per-feature lists.  Every feature then
holds exactly the node's rows, so one boolean gather partitions all
features at once and the split search can run 2-D prefix sums — the
per-lane arrays (and therefore every scored float) are unchanged.

Because the sequences fed to the prefix-sum scoring are element-for-
element identical, every gain, threshold and tie-break — and therefore
every fitted tree — matches the reference path exactly (enforced by
``tests/test_tree_frontier.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class TrainingFrontier:
    """Fit-wide presorted column index for one training matrix.

    Builds the per-column stable sort orders once (``O(d * n log n)``)
    and owns the scratch membership mask the per-node partitions mark
    rows in.  ``root`` is the :class:`FrontierNode` covering all rows.
    """

    def __init__(self, X: np.ndarray):
        matrix = np.asarray(X)
        n_rows, n_features = matrix.shape
        self.X = matrix
        self._scratch = np.zeros(n_rows, dtype=bool)
        if np.isfinite(matrix).all():
            # Column-wise stable argsort == the per-column sort, and with
            # no missing values every column keeps every row — store the
            # (d, n) matrices row-contiguous for the dense node layout.
            orders = np.argsort(matrix, axis=0, kind="stable")
            values = np.take_along_axis(matrix, orders, axis=0)
            self.root = FrontierNode(
                self,
                np.ascontiguousarray(orders.T),
                np.ascontiguousarray(values.T),
                dense=True,
            )
            return
        orders_list: list[np.ndarray] = []
        values_list: list[np.ndarray] = []
        for feature in range(n_features):
            column = matrix[:, feature]
            finite_rows = np.nonzero(np.isfinite(column))[0]
            order = finite_rows[np.argsort(column[finite_rows], kind="stable")]
            orders_list.append(order)
            values_list.append(column[order])
        self.root = FrontierNode(self, orders_list, values_list, dense=False)


class FrontierNode:
    """One node's per-feature sorted index partition.

    ``orders[f]`` holds the node's finite-``f`` row ids sorted by the
    feature value (ties in ascending row-id order); ``values[f]`` holds
    the matching sorted values, so split scoring needs no gather of the
    feature matrix at all.  In the dense layout (fully-finite fits)
    ``orders``/``values`` are ``(d, n)`` matrices whose rows play the
    same role; otherwise they are per-feature lists of ragged arrays.
    """

    __slots__ = ("_frontier", "orders", "values", "dense")

    def __init__(
        self,
        frontier: TrainingFrontier,
        orders,
        values,
        *,
        dense: bool,
    ):
        self._frontier = frontier
        self.orders = orders
        self.values = values
        self.dense = dense

    @property
    def n_features(self) -> int:
        """Number of feature columns with maintained sort orders."""
        return len(self.orders)

    def sorted_finite(self, feature: int) -> tuple[np.ndarray, np.ndarray]:
        """(row ids, values) of the node's finite-valued rows, sorted."""
        return self.orders[feature], self.values[feature]

    def mark(self, rows: np.ndarray) -> np.ndarray:
        """Set the fit-wide membership mask for ``rows``; returns the mask.

        Callers must :meth:`unmark` the same rows afterwards — the mask
        is shared scratch for the whole fit.
        """
        scratch = self._frontier._scratch
        scratch[rows] = True
        return scratch

    def unmark(self, rows: np.ndarray) -> None:
        """Clear the membership mask set by :meth:`mark`."""
        self._frontier._scratch[rows] = False

    def split(
        self,
        left_rows: np.ndarray,
        *,
        keep_left: bool = True,
        keep_right: bool = True,
    ) -> tuple[Optional["FrontierNode"], Optional["FrontierNode"]]:
        """Stable-partition every order array into the two children.

        ``left_rows`` are the global row ids routed to the left child.
        A side whose child can never be split (below Minsplit, at the
        depth cap) can be skipped with ``keep_* = False`` so its arrays
        are never materialised.
        """
        if self.dense:
            return self._split_dense(left_rows, keep_left, keep_right)
        scratch = self.mark(left_rows)
        left_orders: list[np.ndarray] = []
        left_values: list[np.ndarray] = []
        right_orders: list[np.ndarray] = []
        right_values: list[np.ndarray] = []
        for order, vals in zip(self.orders, self.values):
            goes_left = scratch[order]
            if keep_left:
                left_orders.append(order[goes_left])
                left_values.append(vals[goes_left])
            if keep_right:
                stays = ~goes_left
                right_orders.append(order[stays])
                right_values.append(vals[stays])
        self.unmark(left_rows)
        left = (
            FrontierNode(self._frontier, left_orders, left_values, dense=False)
            if keep_left
            else None
        )
        right = (
            FrontierNode(self._frontier, right_orders, right_values, dense=False)
            if keep_right
            else None
        )
        return left, right

    def _split_dense(
        self, left_rows: np.ndarray, keep_left: bool, keep_right: bool
    ) -> tuple[Optional["FrontierNode"], Optional["FrontierNode"]]:
        """Dense split: one boolean gather partitions every feature.

        Each row of the boolean matrix selects exactly ``len(left_rows)``
        entries (every feature holds the same row set), so the row-major
        flattened selection reshapes back into per-feature rows with the
        within-row order — and therefore every downstream float —
        unchanged from the ragged per-feature partition.
        """
        scratch = self.mark(left_rows)
        goes_left = scratch[self.orders]
        self.unmark(left_rows)
        d, n = self.orders.shape
        n_left = left_rows.size
        left = right = None
        if keep_left:
            left = FrontierNode(
                self._frontier,
                self.orders[goes_left].reshape(d, n_left),
                self.values[goes_left].reshape(d, n_left),
                dense=True,
            )
        if keep_right:
            stays = ~goes_left
            right = FrontierNode(
                self._frontier,
                self.orders[stays].reshape(d, n - n_left),
                self.values[stays].reshape(d, n - n_left),
                dense=True,
            )
        return left, right
