"""Interpretability exports for fitted trees.

The paper argues the key advantage of CART over the BP ANN baseline is
interpretability: "users can find out the significant attributes inducing
drive failure by analyzing the output regulations of the tree".  This
module renders fitted trees in the style of Figure 1 and extracts the
root-to-leaf decision rules as human-readable conjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.tree.base import BaseDecisionTree
from repro.tree.node import Node


def _feature_name(index: int, feature_names: Optional[Sequence[str]]) -> str:
    if feature_names is None:
        return f"x[{index}]"
    return str(feature_names[index])


def export_text(
    tree: BaseDecisionTree, feature_names: Optional[Sequence[str]] = None
) -> str:
    """Render a fitted tree as an indented text diagram (Figure 1 style).

    Each node line shows its id, the class distribution or target mean,
    and the share of training weight it holds; internal nodes show the
    split condition taken by their left ("Yes") branch.
    """
    root = tree._check_fitted()
    lines: list[str] = []

    def describe(node: Node) -> str:
        share = 100.0 * node.weight / root.weight if root.weight > 0 else 0.0
        if node.class_distribution is not None:
            dist = ", ".join(f"{p:.2f}" for p in node.class_distribution)
            stats = f"[{dist}] {share:.1f}%"
        else:
            stats = f"mean={node.prediction:.3f} {share:.1f}%"
        if node.is_leaf:
            return f"#{node.node_id} leaf -> {node.prediction:g} {stats}"
        condition = f"{_feature_name(node.feature, feature_names)} < {node.threshold:g}"
        return f"#{node.node_id} {condition}? {stats}"

    def walk(node: Node, indent: int) -> None:
        lines.append("  " * indent + describe(node))
        if not node.is_leaf:
            walk(node.left, indent + 1)
            walk(node.right, indent + 1)

    walk(root, 0)
    return "\n".join(lines)


@dataclass(frozen=True)
class Rule:
    """One root-to-leaf rule: conjunction of conditions implying a prediction.

    ``conditions`` are strings such as ``"POH < 90"``; ``support`` is the
    fraction of training weight reaching the leaf and ``confidence`` the
    leaf's majority-class share (1.0 for regression leaves).
    """

    conditions: tuple[str, ...]
    prediction: float
    support: float
    confidence: float

    def __str__(self) -> str:
        body = " AND ".join(self.conditions) if self.conditions else "TRUE"
        return f"IF {body} THEN predict {self.prediction:g} (support={self.support:.4f}, confidence={self.confidence:.2f})"


def extract_rules(
    tree: BaseDecisionTree,
    feature_names: Optional[Sequence[str]] = None,
    *,
    target_class: Optional[float] = None,
) -> list[Rule]:
    """Extract every root-to-leaf rule, optionally only for one predicted class.

    ``target_class=-1`` recovers the paper's "significant attributes
    inducing drive failure": the conditions leading to failed-labelled
    leaves, ordered by support.
    """
    root = tree._check_fitted()
    rules: list[Rule] = []

    def walk(node: Node, conditions: list[str]) -> None:
        if node.is_leaf:
            if target_class is not None and node.prediction != target_class:
                return
            confidence = (
                float(np.max(node.class_distribution))
                if node.class_distribution is not None
                else 1.0
            )
            support = node.weight / root.weight if root.weight > 0 else 0.0
            rules.append(
                Rule(tuple(conditions), node.prediction, support, confidence)
            )
            return
        name = _feature_name(node.feature, feature_names)
        walk(node.left, conditions + [f"{name} < {node.threshold:g}"])
        walk(node.right, conditions + [f"{name} >= {node.threshold:g}"])

    walk(root, [])
    rules.sort(key=lambda rule: rule.support, reverse=True)
    return rules


def failure_signature(
    tree: BaseDecisionTree,
    feature_names: Sequence[str],
    *,
    failed_label: float = -1.0,
    top: int = 5,
) -> list[str]:
    """Names of the attributes most implicated in failed-leaf rules.

    Attributes are ranked by the total support of the failed rules whose
    conditions mention them — the analysis behind the paper's Section
    V-B1 observation that "W" failures trace to POH/temperature/RUE while
    "Q" failures trace to POH/temperature/SER.
    """
    scores: dict[str, float] = {}
    for rule in extract_rules(tree, feature_names, target_class=failed_label):
        mentioned = {condition.split(" ")[0] for condition in rule.conditions}
        for name in mentioned:
            scores[name] = scores.get(name, 0.0) + rule.support
    ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
    return [name for name, _ in ranked[:top]]
