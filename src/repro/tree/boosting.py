"""AdaBoost over shallow CARTs.

The paper's related work (their MSST'13 study) evaluated AdaBoost and
found it "does not provide significant performance improvement and is
much more computationally expensive"; this implementation exists so the
ablation benchmark can reproduce that comparison against the plain CT.
Discrete AdaBoost (SAMME with two classes) over depth-limited
:class:`~repro.tree.classification.ClassificationTree` weak learners.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tree.base import ServingScorerMixin
from repro.tree.classification import ClassificationTree
from repro.tree.compiled import CompiledForest
from repro.utils.validation import check_2d, check_matching_length


class AdaBoostClassifier(ServingScorerMixin):
    """Discrete AdaBoost ensemble of depth-limited classification trees.

    Args:
        n_rounds: Maximum boosting rounds (stops early on a perfect or
            degenerate weak learner).
        max_depth: Depth cap of each weak learner (1 = decision stumps).
        minsplit/minbucket/cp: Forwarded to the weak learners.
        learning_rate: Shrinkage applied to each round's vote weight.
        backend: ``"compiled"`` (default) scores the stacked weak
            learners in one :class:`~repro.tree.compiled.CompiledForest`
            pass at decision time; ``"node"`` loops the reference walk.
    """

    def __init__(
        self,
        n_rounds: int = 20,
        max_depth: int = 2,
        minsplit: int = 20,
        minbucket: int = 7,
        cp: float = 0.0,
        learning_rate: float = 1.0,
        backend: str = "compiled",
    ):
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        self.n_rounds = int(n_rounds)
        self.learning_rate = float(learning_rate)
        self.backend = backend
        self.tree_params = dict(
            minsplit=minsplit, minbucket=minbucket, cp=cp, max_depth=max_depth,
            backend=backend,
        )
        self.trees_: list[ClassificationTree] = []
        self.alphas_: list[float] = []
        self.classes_: Optional[np.ndarray] = None
        self._compiled_forest: Optional[CompiledForest] = None

    def fit(self, X: object, y: Sequence[object]) -> "AdaBoostClassifier":
        """Fit the boosted ensemble on binary labels."""
        matrix = check_2d("X", X)
        labels = np.asarray(y)
        check_matching_length(("X", matrix), ("y", labels))
        self.classes_ = np.unique(labels)
        if len(self.classes_) != 2:
            raise ValueError(
                f"AdaBoostClassifier requires exactly 2 classes, got {len(self.classes_)}"
            )
        signs = np.where(labels == self.classes_[1], 1.0, -1.0)
        weights = np.full(matrix.shape[0], 1.0 / matrix.shape[0])

        self.trees_ = []
        self.alphas_ = []
        self._compiled_forest = None
        for _ in range(self.n_rounds):
            tree = ClassificationTree(**self.tree_params)
            tree.fit(matrix, labels, sample_weight=weights)
            predicted = np.where(tree.predict(matrix) == self.classes_[1], 1.0, -1.0)
            wrong = predicted != signs
            error = float(weights[wrong].sum())
            if error <= 0:
                # Perfect weak learner: it alone decides, further rounds
                # cannot change the vote.
                self.trees_.append(tree)
                self.alphas_.append(1.0)
                break
            if error >= 0.5:
                # No better than chance under the current weights; adding
                # it (or anything after it) would not help.
                break
            alpha = self.learning_rate * 0.5 * np.log((1.0 - error) / error)
            self.trees_.append(tree)
            self.alphas_.append(float(alpha))
            weights = weights * np.exp(-alpha * signs * predicted)
            weights /= weights.sum()
        if not self.trees_:
            # Every candidate weak learner was degenerate; fall back to a
            # single unweighted tree so predict() still works.
            tree = ClassificationTree(**self.tree_params)
            tree.fit(matrix, labels)
            self.trees_.append(tree)
            self.alphas_.append(1.0)
        return self

    def decision_function(self, X: object) -> np.ndarray:
        """Signed ensemble margin; positive values favour ``classes_[1]``."""
        if not self.trees_:
            raise RuntimeError("AdaBoostClassifier is not fitted; call fit() first")
        matrix = check_2d("X", X)
        if self.backend == "compiled":
            if self._compiled_forest is None:
                self._compiled_forest = CompiledForest(
                    [tree.compiled_ for tree in self.trees_]
                )
            predictions = self._compiled_forest.predict_matrix(matrix)
            margin = np.zeros(matrix.shape[0], dtype=float)
            for alpha, row in zip(self.alphas_, predictions):
                margin += alpha * np.where(row == self.classes_[1], 1.0, -1.0)
            return margin
        margin = np.zeros(matrix.shape[0], dtype=float)
        for alpha, tree in zip(self.alphas_, self.trees_):
            predicted = np.where(tree.predict(matrix) == self.classes_[1], 1.0, -1.0)
            margin += alpha * predicted
        return margin

    def predict(self, X: object) -> np.ndarray:
        """Weighted-majority class labels."""
        margin = self.decision_function(X)
        return np.where(margin >= 0, self.classes_[1], self.classes_[0])
