"""The paper's Regression Tree (RT) model — Algorithm 2.

Splits minimise the within-child sum of squares (formula 4); leaves
predict the weighted target mean.  The health-degree pipeline feeds this
tree targets of +1 (good) down to -1 (at failure) built from the
deterioration-window functions (formulas 5 and 6, in
:mod:`repro.health.degree`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tree.base import BaseDecisionTree
from repro.tree.node import Node
from repro.tree.splitter import (
    SplitCandidate,
    find_best_split,
    find_best_split_presorted,
)
from repro.utils.validation import check_1d, check_2d, check_matching_length


class RegressionTree(BaseDecisionTree):
    """CART regressor implementing the paper's Algorithm 2.

    Args:
        minsplit: Minimum samples at a node to attempt a split (paper: 20).
        minbucket: Minimum samples at any leaf (paper: 7).
        cp: Complexity parameter for pruning (paper: 0.001); a split
            survives if it removes at least ``cp`` of the root's total
            sum of squares.
        max_depth: Optional depth cap.
        n_surrogates: Surrogate splits per node for missing-value
            routing (rpart behaviour; 0 disables).
        backend: ``"compiled"`` (default, flat-array inference) or
            ``"node"`` (reference object-graph walk); outputs are
            bit-identical.

    Example:
        >>> tree = RegressionTree(minsplit=2, minbucket=1, cp=0.0)
        >>> _ = tree.fit([[0.0], [1.0], [2.0], [3.0]], [0.0, 0.0, 1.0, 1.0])
        >>> tree.predict([[2.9]]).tolist()
        [1.0]
    """

    def fit(
        self,
        X: object,
        y: Sequence[float],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "RegressionTree":
        """Fit the tree on feature matrix ``X`` and real-valued targets ``y``."""
        matrix = check_2d("X", X)
        targets = check_1d("y", y)
        check_matching_length(("X", matrix), ("y", targets))
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(targets)):
            raise ValueError("y must be finite")
        weights = (
            np.ones(matrix.shape[0], dtype=float)
            if sample_weight is None
            else check_1d("sample_weight", sample_weight)
        )
        check_matching_length(("X", matrix), ("sample_weight", weights))
        if np.any(weights < 0):
            raise ValueError("sample_weight must be non-negative")
        self._y = targets
        # Fit-wide w·y / w·y·y columns for the presorted scorer;
        # elementwise products commute with row gathering, so hoisting
        # them out of the node loop changes no scored float.
        wy = weights * targets
        self._target_products = (wy, wy * targets) if self.presort else None
        self.n_features_ = matrix.shape[1]
        self._grow(matrix, weights)
        del self._y, self._target_products
        return self

    # -- BaseDecisionTree hooks ----------------------------------------------

    def _node_statistics(self, indices: np.ndarray):
        y = self._y[indices]
        w = self._w[indices]
        weight = float(w.sum())
        mean = float(np.sum(w * y) / weight) if weight > 0 else 0.0
        sse = float(np.sum(w * (y - mean) ** 2))
        return mean, sse, None, weight

    def _is_pure(self, indices: np.ndarray) -> bool:
        y = self._y[indices]
        return bool(np.all(y == y[0]))

    def _search_split(self, indices, frontier_node=None) -> Optional[SplitCandidate]:
        if frontier_node is not None:
            return find_best_split_presorted(
                frontier_node,
                self._X,
                indices,
                task="regression",
                weights=self._w,
                minbucket=self.minbucket,
                targets=self._y,
                target_products=self._target_products,
            )
        return find_best_split(
            self._X[indices],
            task="regression",
            weights=self._w[indices],
            minbucket=self.minbucket,
            targets=self._y[indices],
        )

    def _relative_gain(self, node: Node, root: Node) -> float:
        # Regression impurity (SSE) is already weight-aggregated, so the
        # node's absolute SSE reduction is directly comparable to the
        # root's total SSE.
        if root.impurity <= 0:
            return 0.0
        return node.gain / root.impurity

    # -- inference ------------------------------------------------------------

    def predict(self, X: object) -> np.ndarray:
        """Predicted target mean (health degree) for each row of ``X``."""
        return self._leaf_predictions(X)
