"""Exhaustive binary split search for CART induction.

Implements the inner loop of the paper's Algorithms 1 and 2: "for each
possible split based on v_i at D" — every feature, every boundary between
two distinct sorted values — scored by information gain (classification)
or by the resulting within-child sum of squares (regression).  The search
is vectorised over candidate thresholds with prefix sums, so a node with
``n`` samples and ``d`` features costs ``O(d * n log n)``.

Missing values (NaN) are ignored while scoring a feature and are routed
to the heavier child when the node is actually split, mirroring how the
paper's dataset tolerates missed samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.tree.criteria import entropy, gini


@dataclass(frozen=True)
class SplitCandidate:
    """The best split found for a node.

    ``gain`` is the criterion improvement: information gain for
    classification, SSE reduction for regression.  ``threshold`` sends
    samples with ``x < threshold`` left.
    """

    feature: int
    threshold: float
    gain: float
    missing_goes_left: bool


def _entropy_rows(class_weights: np.ndarray) -> np.ndarray:
    """Row-wise Shannon entropy of an (m, C) weight matrix."""
    totals = class_weights.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, class_weights / totals, 0.0)
        logs = np.log2(np.where(probs > 0, probs, 1.0))
    return -(probs * logs).sum(axis=1)


def _gini_rows(class_weights: np.ndarray) -> np.ndarray:
    """Row-wise Gini impurity of an (m, C) weight matrix."""
    totals = class_weights.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, class_weights / totals, 0.0)
    return 1.0 - (probs**2).sum(axis=1)


_ROW_IMPURITY = {"entropy": _entropy_rows, "gini": _gini_rows}
_NODE_IMPURITY = {"entropy": entropy, "gini": gini}


def best_classification_split(
    feature_values: np.ndarray,
    class_indices: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
    *,
    minbucket: int = 1,
    criterion: str = "entropy",
) -> Optional[tuple[float, float]]:
    """Best (threshold, gain) for one feature at a classification node.

    Returns ``None`` when no admissible split exists (constant feature,
    all-missing feature, or minbucket unreachable).  Gain is measured on
    the node's *finite-valued* samples, matching the convention that NaNs
    carry no split information.
    """
    finite = np.isfinite(feature_values)
    x = feature_values[finite]
    if x.size < 2 * minbucket:
        return None
    cls = class_indices[finite]
    w = weights[finite]

    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
    if boundaries.size == 0:
        return None
    left_sizes = boundaries + 1
    admissible = (left_sizes >= minbucket) & (x.size - left_sizes >= minbucket)
    boundaries = boundaries[admissible]
    if boundaries.size == 0:
        return None

    onehot = np.zeros((x.size, n_classes), dtype=float)
    onehot[np.arange(x.size), cls[order]] = w[order]
    prefix = np.cumsum(onehot, axis=0)
    totals = prefix[-1]

    left = prefix[boundaries]
    right = totals[None, :] - left
    impurity_rows = _ROW_IMPURITY[criterion]
    total_weight = totals.sum()
    if total_weight <= 0:
        return None
    parent_impurity = _NODE_IMPURITY[criterion](totals)
    child_impurity = (
        left.sum(axis=1) * impurity_rows(left)
        + right.sum(axis=1) * impurity_rows(right)
    ) / total_weight
    gains = parent_impurity - child_impurity

    best = int(np.argmax(gains))
    gain = float(gains[best])
    if gain < -1e-12 or not np.isfinite(gain):
        return None
    # Zero-gain splits are admitted (within rounding tolerance): XOR-like interactions have no
    # first-split gain, yet their children separate perfectly.  CP
    # pruning removes the ones that never pay off.
    boundary = boundaries[best]
    threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    return threshold, max(gain, 0.0)


def best_regression_split(
    feature_values: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    *,
    minbucket: int = 1,
) -> Optional[tuple[float, float]]:
    """Best (threshold, SSE-reduction) for one feature at a regression node.

    The paper's Algorithm 2 selects the split minimising
    ``sq = sq_left + sq_right``; we return the equivalent maximisation of
    ``SSE(parent) - sq`` so classification and regression share a single
    "larger gain is better" contract.
    """
    finite = np.isfinite(feature_values)
    x = feature_values[finite]
    if x.size < 2 * minbucket:
        return None
    y = targets[finite]
    w = weights[finite]

    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
    if boundaries.size == 0:
        return None
    left_sizes = boundaries + 1
    admissible = (left_sizes >= minbucket) & (x.size - left_sizes >= minbucket)
    boundaries = boundaries[admissible]
    if boundaries.size == 0:
        return None

    w_sorted = w[order]
    wy = w_sorted * y[order]
    wyy = wy * y[order]
    cw = np.cumsum(w_sorted)
    cwy = np.cumsum(wy)
    cwyy = np.cumsum(wyy)

    def _sse(sum_w: np.ndarray, sum_wy: np.ndarray, sum_wyy: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            means_term = np.where(sum_w > 0, sum_wy**2 / sum_w, 0.0)
        return sum_wyy - means_term

    left_sse = _sse(cw[boundaries], cwy[boundaries], cwyy[boundaries])
    right_sse = _sse(cw[-1] - cw[boundaries], cwy[-1] - cwy[boundaries], cwyy[-1] - cwyy[boundaries])
    parent_sse = _sse(np.array([cw[-1]]), np.array([cwy[-1]]), np.array([cwyy[-1]]))[0]
    gains = parent_sse - (left_sse + right_sse)

    best = int(np.argmax(gains))
    gain = float(gains[best])
    if gain < -1e-12 or not np.isfinite(gain):
        return None
    boundary = boundaries[best]
    threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    return threshold, max(gain, 0.0)


def find_best_split(
    X: np.ndarray,
    *,
    task: str,
    weights: np.ndarray,
    minbucket: int,
    class_indices: Optional[np.ndarray] = None,
    n_classes: int = 0,
    targets: Optional[np.ndarray] = None,
    criterion: str = "entropy",
    feature_subset: Optional[np.ndarray] = None,
) -> Optional[SplitCandidate]:
    """Search every (feature, threshold) pair at a node; return the best.

    ``feature_subset`` restricts the search to the given feature indices
    (used by the random-forest extension); ``None`` searches all columns.
    """
    if task not in ("classification", "regression"):
        raise ValueError(f"task must be classification or regression, got {task!r}")
    features = (
        np.arange(X.shape[1]) if feature_subset is None else np.asarray(feature_subset)
    )
    best: Optional[SplitCandidate] = None
    for feature in features:
        column = X[:, feature]
        if task == "classification":
            found = best_classification_split(
                column, class_indices, weights, n_classes,
                minbucket=minbucket, criterion=criterion,
            )
        else:
            found = best_regression_split(
                column, targets, weights, minbucket=minbucket
            )
        if found is None:
            continue
        threshold, gain = found
        if best is None or gain > best.gain:
            goes_left = _missing_side(column, weights, threshold)
            best = SplitCandidate(int(feature), threshold, gain, goes_left)
    return best


def _missing_side(column: np.ndarray, weights: np.ndarray, threshold: float) -> bool:
    """True when the left child carries more training weight (NaN routing)."""
    finite = np.isfinite(column)
    left_weight = float(weights[finite & (column < threshold)].sum())
    right_weight = float(weights[finite & (column >= threshold)].sum())
    return left_weight >= right_weight


def partition(
    column: np.ndarray, threshold: float, missing_goes_left: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean (left, right) masks for applying a split to a node's rows."""
    missing = ~np.isfinite(column)
    left = (column < threshold) & ~missing
    if missing_goes_left:
        left |= missing
    return left, ~left
