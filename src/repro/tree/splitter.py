"""Exhaustive binary split search for CART induction.

Implements the inner loop of the paper's Algorithms 1 and 2: "for each
possible split based on v_i at D" — every feature, every boundary between
two distinct sorted values — scored by information gain (classification)
or by the resulting within-child sum of squares (regression).  Scoring
is vectorised over candidate thresholds with prefix sums.

Two entry points share that scoring:

* :func:`find_best_split` — the reference path; re-sorts each feature at
  the node (``O(d * n log n)`` per node).
* :func:`find_best_split_presorted` — reads the node's pre-partitioned
  sort orders from a :class:`~repro.tree.frontier.FrontierNode`
  (``O(d * n)`` per node).  Bit-identical to the reference because both
  feed element-for-element identical sorted sequences to the same
  scoring functions.

Missing values (NaN) are ignored while scoring a feature and are routed
to the heavier child when the node is actually split, mirroring how the
paper's dataset tolerates missed samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.tree.criteria import entropy, gini
from repro.tree.frontier import FrontierNode


@dataclass(frozen=True)
class SplitCandidate:
    """The best split found for a node.

    ``gain`` is the criterion improvement: information gain for
    classification, SSE reduction for regression.  ``threshold`` sends
    samples with ``x < threshold`` left.
    """

    feature: int
    threshold: float
    gain: float
    missing_goes_left: bool


def _entropy_rows(class_weights: np.ndarray) -> np.ndarray:
    """Row-wise Shannon entropy of an (m, C) weight matrix."""
    totals = class_weights.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, class_weights / totals, 0.0)
        logs = np.log2(np.where(probs > 0, probs, 1.0))
    return -(probs * logs).sum(axis=1)


def _gini_rows(class_weights: np.ndarray) -> np.ndarray:
    """Row-wise Gini impurity of an (m, C) weight matrix."""
    totals = class_weights.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, class_weights / totals, 0.0)
    return 1.0 - (probs**2).sum(axis=1)


_ROW_IMPURITY = {"entropy": _entropy_rows, "gini": _gini_rows}
_NODE_IMPURITY = {"entropy": entropy, "gini": gini}


def best_classification_split(
    feature_values: np.ndarray,
    class_indices: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
    *,
    minbucket: int = 1,
    criterion: str = "entropy",
) -> Optional[tuple[float, float]]:
    """Best (threshold, gain) for one feature at a classification node.

    Returns ``None`` when no admissible split exists (constant feature,
    all-missing feature, or minbucket unreachable).  Gain is measured on
    the node's *finite-valued* samples, matching the convention that NaNs
    carry no split information.
    """
    finite = np.isfinite(feature_values)
    x = feature_values[finite]
    if x.size < 2 * minbucket:
        return None
    cls = class_indices[finite]
    w = weights[finite]

    order = np.argsort(x, kind="stable")
    return _sorted_classification_split(
        x[order], cls[order], w[order], n_classes,
        minbucket=minbucket, criterion=criterion,
    )


def _sorted_classification_split(
    x_sorted: np.ndarray,
    cls_sorted: np.ndarray,
    w_sorted: np.ndarray,
    n_classes: int,
    *,
    minbucket: int,
    criterion: str,
) -> Optional[tuple[float, float]]:
    """Score a classification feature whose finite values are pre-sorted.

    The shared inner loop of the reference and presorted paths; inputs
    are the node's finite values ascending (ties in row order) with the
    matching class indices and weights.
    """
    if x_sorted.size < 2 * minbucket:
        return None
    boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
    if boundaries.size == 0:
        return None
    left_sizes = boundaries + 1
    admissible = (left_sizes >= minbucket) & (x_sorted.size - left_sizes >= minbucket)
    boundaries = boundaries[admissible]
    if boundaries.size == 0:
        return None

    onehot = np.zeros((x_sorted.size, n_classes), dtype=float)
    onehot[np.arange(x_sorted.size), cls_sorted] = w_sorted
    prefix = np.cumsum(onehot, axis=0)
    totals = prefix[-1]

    left = prefix[boundaries]
    right = totals[None, :] - left
    impurity_rows = _ROW_IMPURITY[criterion]
    total_weight = totals.sum()
    if total_weight <= 0:
        return None
    parent_impurity = _NODE_IMPURITY[criterion](totals)
    child_impurity = (
        left.sum(axis=1) * impurity_rows(left)
        + right.sum(axis=1) * impurity_rows(right)
    ) / total_weight
    gains = parent_impurity - child_impurity

    best = int(np.argmax(gains))
    gain = float(gains[best])
    if gain < -1e-12 or not np.isfinite(gain):
        return None
    # Zero-gain splits are admitted (within rounding tolerance): XOR-like interactions have no
    # first-split gain, yet their children separate perfectly.  CP
    # pruning removes the ones that never pay off.
    boundary = boundaries[best]
    threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    return threshold, max(gain, 0.0)


def _binary_node_split_batched(
    frontier_node: FrontierNode,
    X: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
    *,
    minbucket: int,
    criterion: str,
) -> Optional[SplitCandidate]:
    """Two-class node search scoring every feature in one fused pass.

    Per feature only the order-dependent prefix sums run; the candidate
    scoring — the bulk of the numpy call count — happens once on the
    concatenation of all features' (left; right) class totals, with
    per-feature parents/totals expanded by ``np.repeat``.  Every
    elementwise operation applies the identical IEEE-754 sequence to the
    identical operands as the per-feature reference, and the per-feature
    segment ``argmax`` equals the reference's per-feature ``argmax``, so
    the selected split is bit-for-bit the same (golden tests pin this).
    ``w0``/``w1`` are the fit-wide per-class weight columns.
    """
    scored: list = []  # (feature, x_sorted, boundaries)
    t0s: list = []
    t1s: list = []
    totals: list = []
    parents: list = []
    counts: list = []
    parent_cache: dict = {}
    if frontier_node.dense:
        # Dense layout: run both prefix sums as 2-D lane-wise cumsums (each
        # lane is exactly the ragged path's 1-D cumsum) and gather every
        # feature's candidate left sums from the flattened matrices in one
        # fancy index.
        orders = frontier_node.orders
        values = frontier_node.values
        d, n = orders.shape
        if n < 2 * minbucket:
            return None
        cum0 = w0[orders].cumsum(axis=1)
        cum1 = w1[orders].cumsum(axis=1)
        per_feature = _dense_admissible_boundaries(values, minbucket)
        if per_feature is None:
            return None
        last0 = cum0[:, -1]
        last1 = cum1[:, -1]
        for feature, boundaries in per_feature:
            t0 = last0[feature]
            t1 = last1[feature]
            total_weight = t0 + t1
            if total_weight <= 0:
                continue
            key = (t0, t1)
            parent_impurity = parent_cache.get(key)
            if parent_impurity is None:
                parent_impurity = _node_impurity_pair(t0, t1, criterion)
                parent_cache[key] = parent_impurity
            scored.append((feature, values[feature], boundaries))
            t0s.append(t0)
            t1s.append(t1)
            totals.append(total_weight)
            parents.append(parent_impurity)
            counts.append(boundaries.size)
        if not scored:
            return None
        flat = np.concatenate([entry[2] for entry in scored]) + np.repeat(
            np.array([entry[0] for entry in scored]) * n, counts
        )
        left0 = cum0.ravel()[flat]
        left1 = cum1.ravel()[flat]
    else:
        l0s: list = []
        l1s: list = []
        for feature in range(frontier_node.n_features):
            rows, x_sorted = frontier_node.sorted_finite(feature)
            n = rows.size
            if n < 2 * minbucket:
                continue
            boundaries = _admissible_boundaries(x_sorted, n, minbucket)
            if boundaries is None:
                continue
            cum0 = w0[rows].cumsum()
            cum1 = w1[rows].cumsum()
            t0 = cum0[-1]
            t1 = cum1[-1]
            total_weight = t0 + t1
            if total_weight <= 0:
                continue
            # Features with no missing values share the node's class totals,
            # so the cache collapses their parent impurities into one
            # computation (same float inputs → same float output).
            key = (t0, t1)
            parent_impurity = parent_cache.get(key)
            if parent_impurity is None:
                parent_impurity = _node_impurity_pair(t0, t1, criterion)
                parent_cache[key] = parent_impurity
            scored.append((feature, x_sorted, boundaries))
            l0s.append(cum0[boundaries])
            l1s.append(cum1[boundaries])
            t0s.append(t0)
            t1s.append(t1)
            totals.append(total_weight)
            parents.append(parent_impurity)
            counts.append(boundaries.size)
        if not scored:
            return None
        left0 = np.concatenate(l0s)
        left1 = np.concatenate(l1s)
    m = left0.size
    expand0 = np.repeat(np.array(t0s), counts)
    expand1 = np.repeat(np.array(t1s), counts)
    # Stacked (all-left; all-right) children of every feature: rows are
    # independent, so one impurity call scores them all.
    c0 = np.concatenate((left0, expand0 - left0))
    c1 = np.concatenate((left1, expand1 - left1))
    ct = c0 + c1
    impurity = _IMPURITY_PAIR[criterion](c0, c1, ct)
    weighted = ct * impurity
    gains = (
        np.repeat(np.array(parents), counts)
        - (weighted[:m] + weighted[m:]) / np.repeat(np.array(totals), counts)
    )

    best_feature = -1
    best_gain = 0.0
    best_threshold = 0.0
    start = 0
    for (feature, x_sorted, boundaries), count in zip(scored, counts):
        segment = gains[start:start + count]
        start += count
        local = int(segment.argmax())
        gain = float(segment[local])
        if gain < -1e-12 or not np.isfinite(gain):
            continue
        gain = max(gain, 0.0)
        if best_feature < 0 or gain > best_gain:
            boundary = boundaries[local]
            best_feature = feature
            best_gain = gain
            best_threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    if best_feature < 0:
        return None
    # The reference recomputes the NaN-routing side on every improving
    # feature, but only the winner's survives — one call suffices.
    goes_left = _missing_side(
        X[indices, best_feature], weights[indices], best_threshold
    )
    return SplitCandidate(best_feature, best_threshold, best_gain, goes_left)


def _admissible_boundaries(
    x_sorted: np.ndarray, n: int, minbucket: int
) -> Optional[np.ndarray]:
    """Minbucket-admissible boundary positions between distinct sorted values.

    Equivalent to masking ``boundaries`` with
    ``(boundaries + 1 >= minbucket) & (n - boundaries - 1 >= minbucket)``;
    since boundaries ascend, the mask selects a contiguous run, located
    here with two binary searches instead of O(m) boolean work.
    """
    boundaries = (x_sorted[:-1] < x_sorted[1:]).nonzero()[0]
    if boundaries.size == 0:
        return None
    lo, hi = boundaries.searchsorted((minbucket - 1, n - minbucket))
    if lo >= hi:
        return None
    return boundaries[lo:hi]


def _dense_admissible_boundaries(
    values: np.ndarray, minbucket: int
) -> Optional[list[tuple[int, np.ndarray]]]:
    """Per-feature :func:`_admissible_boundaries` over a dense value matrix.

    One 2-D comparison + ``nonzero`` finds every feature's distinct-value
    boundaries at once (``nonzero`` walks the matrix row-major, so each
    feature's positions come out contiguous and ascending); the minbucket
    window is then clipped per feature with the same two binary searches.
    Returns ``[(feature, boundaries), ...]`` for features with at least
    one admissible candidate, or ``None`` when no feature has any.
    """
    d, n = values.shape
    feat_idx, col_idx = (values[:, :-1] < values[:, 1:]).nonzero()
    if col_idx.size == 0:
        return None
    offsets = np.zeros(d + 1, dtype=np.intp)
    np.cumsum(np.bincount(feat_idx, minlength=d), out=offsets[1:])
    out: list[tuple[int, np.ndarray]] = []
    for feature in range(d):
        seg = col_idx[offsets[feature]:offsets[feature + 1]]
        if seg.size == 0:
            continue
        lo, hi = seg.searchsorted((minbucket - 1, n - minbucket))
        if lo < hi:
            out.append((feature, seg[lo:hi]))
    return out or None


def _entropy_pair(a: np.ndarray, b: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Shannon entropy of two-class weight columns; matches ``_entropy_rows``.

    ``a``/``b`` are freshly-allocated non-negative temporaries and are
    overwritten in place; where ``totals`` is zero both are exactly zero
    (non-negative weights), so the masked divide leaves the reference's
    zero probability.
    """
    positive = totals > 0
    pa = np.divide(a, totals, out=a, where=positive)
    pb = np.divide(b, totals, out=b, where=positive)
    # log2 over a where-substituted array beats a masked ufunc call;
    # log2(1) == 0 exactly, matching the reference's zero fill.
    la = np.log2(np.where(pa > 0, pa, 1.0))
    lb = np.log2(np.where(pb > 0, pb, 1.0))
    return -(pa * la + pb * lb)


def _gini_pair(a: np.ndarray, b: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity of two-class weight columns; matches ``_gini_rows``."""
    positive = totals > 0
    pa = np.divide(a, totals, out=a, where=positive)
    pb = np.divide(b, totals, out=b, where=positive)
    return 1.0 - (pa * pa + pb * pb)


_IMPURITY_PAIR = {"entropy": _entropy_pair, "gini": _gini_pair}


def _node_impurity_pair(t0: float, t1: float, criterion: str) -> float:
    """Two-class node impurity; replays :func:`repro.tree.criteria.entropy`
    / :func:`~repro.tree.criteria.gini` on ``np.array([t0, t1])`` operation
    for operation (minus the non-negativity validation, which the fit-time
    weight checks already guarantee)."""
    total = t0 + t1
    if total <= 0:
        return 0.0
    probs = np.array([t0, t1]) / total
    if criterion == "entropy":
        if t0 > 0 and t1 > 0:
            logs = np.log2(probs)
            return float(-(probs[0] * logs[0] + probs[1] * logs[1]))
        kept = probs[probs > 0]
        return float(-np.sum(kept * np.log2(kept)))
    sq = probs**2
    return float(1.0 - (sq[0] + sq[1]))


def best_regression_split(
    feature_values: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    *,
    minbucket: int = 1,
) -> Optional[tuple[float, float]]:
    """Best (threshold, SSE-reduction) for one feature at a regression node.

    The paper's Algorithm 2 selects the split minimising
    ``sq = sq_left + sq_right``; we return the equivalent maximisation of
    ``SSE(parent) - sq`` so classification and regression share a single
    "larger gain is better" contract.
    """
    finite = np.isfinite(feature_values)
    x = feature_values[finite]
    if x.size < 2 * minbucket:
        return None
    y = targets[finite]
    w = weights[finite]

    order = np.argsort(x, kind="stable")
    return _sorted_regression_split(
        x[order], y[order], w[order], minbucket=minbucket
    )


def _sorted_regression_split(
    x_sorted: np.ndarray,
    y_sorted: np.ndarray,
    w_sorted: np.ndarray,
    *,
    minbucket: int,
) -> Optional[tuple[float, float]]:
    """Score a regression feature whose finite values are pre-sorted."""
    if x_sorted.size < 2 * minbucket:
        return None
    boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
    if boundaries.size == 0:
        return None
    left_sizes = boundaries + 1
    admissible = (left_sizes >= minbucket) & (x_sorted.size - left_sizes >= minbucket)
    boundaries = boundaries[admissible]
    if boundaries.size == 0:
        return None

    wy = w_sorted * y_sorted
    wyy = wy * y_sorted
    cw = np.cumsum(w_sorted)
    cwy = np.cumsum(wy)
    cwyy = np.cumsum(wyy)

    def _sse(sum_w: np.ndarray, sum_wy: np.ndarray, sum_wyy: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            means_term = np.where(sum_w > 0, sum_wy**2 / sum_w, 0.0)
        return sum_wyy - means_term

    left_sse = _sse(cw[boundaries], cwy[boundaries], cwyy[boundaries])
    right_sse = _sse(cw[-1] - cw[boundaries], cwy[-1] - cwy[boundaries], cwyy[-1] - cwyy[boundaries])
    parent_sse = _sse(np.array([cw[-1]]), np.array([cwy[-1]]), np.array([cwyy[-1]]))[0]
    gains = parent_sse - (left_sse + right_sse)

    best = int(np.argmax(gains))
    gain = float(gains[best])
    if gain < -1e-12 or not np.isfinite(gain):
        return None
    boundary = boundaries[best]
    threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    return threshold, max(gain, 0.0)


def _regression_node_split_batched(
    frontier_node: FrontierNode,
    X: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    wy: np.ndarray,
    wyy: np.ndarray,
    *,
    minbucket: int,
) -> Optional[SplitCandidate]:
    """Regression node search scoring every feature in one fused pass.

    The SSE twin of :func:`_binary_node_split_batched`: per feature only
    the three prefix sums run; the masked mean-term divides and gain
    subtraction happen once over the concatenated (left; right) child
    statistics of all features.  ``wy``/``wyy`` are the fit-wide
    ``w · y`` / ``w · y · y`` columns.  Bit-identical to the per-feature
    reference — same elementwise IEEE-754 sequence, segment ``argmax``
    equals per-feature ``argmax``.
    """
    scored: list = []  # (feature, x_sorted, boundaries)
    tws: list = []
    twys: list = []
    twyys: list = []
    parents: list = []
    counts: list = []
    if frontier_node.dense:
        orders = frontier_node.orders
        values = frontier_node.values
        d, n = orders.shape
        if n < 2 * minbucket:
            return None
        cw = weights[orders].cumsum(axis=1)
        cwy = wy[orders].cumsum(axis=1)
        cwyy = wyy[orders].cumsum(axis=1)
        per_feature = _dense_admissible_boundaries(values, minbucket)
        if per_feature is None:
            return None
        last_w = cw[:, -1]
        last_wy = cwy[:, -1]
        last_wyy = cwyy[:, -1]
        for feature, boundaries in per_feature:
            tw = last_w[feature]
            twy = last_wy[feature]
            twyy = last_wyy[feature]
            scored.append((feature, values[feature], boundaries))
            tws.append(tw)
            twys.append(twy)
            twyys.append(twyy)
            parents.append(twyy - (twy * twy / tw if tw > 0 else 0.0))
            counts.append(boundaries.size)
        flat = np.concatenate([entry[2] for entry in scored]) + np.repeat(
            np.array([entry[0] for entry in scored]) * n, counts
        )
        lw = cw.ravel()[flat]
        lwy = cwy.ravel()[flat]
        lwyy = cwyy.ravel()[flat]
    else:
        lws: list = []
        lwys: list = []
        lwyys: list = []
        for feature in range(frontier_node.n_features):
            rows, x_sorted = frontier_node.sorted_finite(feature)
            n = rows.size
            if n < 2 * minbucket:
                continue
            boundaries = _admissible_boundaries(x_sorted, n, minbucket)
            if boundaries is None:
                continue
            cw = weights[rows].cumsum()
            cwy = wy[rows].cumsum()
            cwyy = wyy[rows].cumsum()
            tw = cw[-1]
            twy = cwy[-1]
            twyy = cwyy[-1]
            scored.append((feature, x_sorted, boundaries))
            lws.append(cw[boundaries])
            lwys.append(cwy[boundaries])
            lwyys.append(cwyy[boundaries])
            tws.append(tw)
            twys.append(twy)
            twyys.append(twyy)
            parents.append(twyy - (twy * twy / tw if tw > 0 else 0.0))
            counts.append(boundaries.size)
        if not scored:
            return None
        lw = np.concatenate(lws)
        lwy = np.concatenate(lwys)
        lwyy = np.concatenate(lwyys)
    m = lw.size
    w_all = np.concatenate((lw, np.repeat(np.array(tws), counts) - lw))
    wy_all = np.concatenate((lwy, np.repeat(np.array(twys), counts) - lwy))
    wyy_all = np.concatenate((lwyy, np.repeat(np.array(twyys), counts) - lwyy))
    sse = wyy_all - np.divide(
        wy_all * wy_all, w_all, out=np.zeros_like(w_all), where=w_all > 0
    )
    gains = np.repeat(np.array(parents), counts) - (sse[:m] + sse[m:])

    best_feature = -1
    best_gain = 0.0
    best_threshold = 0.0
    start = 0
    for (feature, x_sorted, boundaries), count in zip(scored, counts):
        segment = gains[start:start + count]
        start += count
        local = int(segment.argmax())
        gain = float(segment[local])
        if gain < -1e-12 or not np.isfinite(gain):
            continue
        gain = max(gain, 0.0)
        if best_feature < 0 or gain > best_gain:
            boundary = boundaries[local]
            best_feature = feature
            best_gain = gain
            best_threshold = float((x_sorted[boundary] + x_sorted[boundary + 1]) / 2.0)
    if best_feature < 0:
        return None
    goes_left = _missing_side(
        X[indices, best_feature], weights[indices], best_threshold
    )
    return SplitCandidate(best_feature, best_threshold, best_gain, goes_left)


def find_best_split(
    X: np.ndarray,
    *,
    task: str,
    weights: np.ndarray,
    minbucket: int,
    class_indices: Optional[np.ndarray] = None,
    n_classes: int = 0,
    targets: Optional[np.ndarray] = None,
    criterion: str = "entropy",
    feature_subset: Optional[np.ndarray] = None,
) -> Optional[SplitCandidate]:
    """Search every (feature, threshold) pair at a node; return the best.

    ``feature_subset`` restricts the search to the given feature indices
    (used by the random-forest extension); ``None`` searches all columns.
    """
    if task not in ("classification", "regression"):
        raise ValueError(f"task must be classification or regression, got {task!r}")
    features = (
        np.arange(X.shape[1]) if feature_subset is None else np.asarray(feature_subset)
    )
    best: Optional[SplitCandidate] = None
    for feature in features:
        column = X[:, feature]
        if task == "classification":
            found = best_classification_split(
                column, class_indices, weights, n_classes,
                minbucket=minbucket, criterion=criterion,
            )
        else:
            found = best_regression_split(
                column, targets, weights, minbucket=minbucket
            )
        if found is None:
            continue
        threshold, gain = found
        if best is None or gain > best.gain:
            goes_left = _missing_side(column, weights, threshold)
            best = SplitCandidate(int(feature), threshold, gain, goes_left)
    return best


def find_best_split_presorted(
    frontier_node: FrontierNode,
    X: np.ndarray,
    indices: np.ndarray,
    *,
    task: str,
    weights: np.ndarray,
    minbucket: int,
    class_indices: Optional[np.ndarray] = None,
    n_classes: int = 0,
    targets: Optional[np.ndarray] = None,
    criterion: str = "entropy",
    binary_class_weights: Optional[tuple[np.ndarray, np.ndarray]] = None,
    target_products: Optional[tuple[np.ndarray, np.ndarray]] = None,
) -> Optional[SplitCandidate]:
    """Presorted node split search — :func:`find_best_split` without sorts.

    ``frontier_node`` carries the node's per-feature sorted row ids and
    values; ``X``/``weights``/``class_indices``/``targets`` are the
    *fit-wide* arrays (indexed by global row id), and ``indices`` the
    node's rows in ascending order (used only for the NaN-routing
    tie-break, which the reference computes in row order).

    ``binary_class_weights`` (two-class fits) and ``target_products``
    (regression fits) are fit-wide precomputed product columns —
    ``(w·[cls==0], w·[cls==1])`` and ``(w·y, w·y·y)`` respectively —
    hoisted out of the per-node loop; elementwise products commute with
    row gathering, so the scored floats are unchanged.  When omitted
    the general scorers recompute them per feature.
    """
    if task not in ("classification", "regression"):
        raise ValueError(f"task must be classification or regression, got {task!r}")
    if task == "classification" and binary_class_weights is not None and n_classes == 2:
        w0, w1 = binary_class_weights
        return _binary_node_split_batched(
            frontier_node, X, indices, weights, w0, w1,
            minbucket=minbucket, criterion=criterion,
        )
    if task == "regression" and target_products is not None:
        wy, wyy = target_products
        return _regression_node_split_batched(
            frontier_node, X, indices, weights, wy, wyy,
            minbucket=minbucket,
        )
    best: Optional[SplitCandidate] = None
    node_weights: Optional[np.ndarray] = None
    for feature in range(frontier_node.n_features):
        rows, x_sorted = frontier_node.sorted_finite(feature)
        if rows.size < 2 * minbucket:
            continue
        if task == "classification":
            found = _sorted_classification_split(
                x_sorted, class_indices[rows], weights[rows], n_classes,
                minbucket=minbucket, criterion=criterion,
            )
        else:
            found = _sorted_regression_split(
                x_sorted, targets[rows], weights[rows], minbucket=minbucket
            )
        if found is None:
            continue
        threshold, gain = found
        if best is None or gain > best.gain:
            if node_weights is None:
                node_weights = weights[indices]
            goes_left = _missing_side(X[indices, feature], node_weights, threshold)
            best = SplitCandidate(int(feature), threshold, gain, goes_left)
    return best


def _missing_side(column: np.ndarray, weights: np.ndarray, threshold: float) -> bool:
    """True when the left child carries more training weight (NaN routing)."""
    finite = np.isfinite(column)
    left_weight = float(weights[finite & (column < threshold)].sum())
    right_weight = float(weights[finite & (column >= threshold)].sum())
    return left_weight >= right_weight


def partition(
    column: np.ndarray, threshold: float, missing_goes_left: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean (left, right) masks for applying a split to a node's rows."""
    missing = ~np.isfinite(column)
    left = (column < threshold) & ~missing
    if missing_goes_left:
        left |= missing
    return left, ~left
