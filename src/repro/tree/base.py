"""Shared CART machinery: stack-based growth, application and pruning.

The growth loop is a direct transcription of the paper's Algorithm 1/2
skeleton: create a root holding all the data, push it on a stack, and
repeatedly pop a node, check the split conditions (Minsplit, Minbucket,
purity), find the criterion-maximising split, and push the children.
After growth, subtrees whose split gain falls below the Complexity
Parameter are pruned back (lines 18-22 of both algorithms).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter
from typing import Optional

import numpy as np

from repro.observability import get_registry, get_tracer
from repro.tree.compiled import CompiledTree, compile_tree
from repro.tree.frontier import FrontierNode, TrainingFrontier
from repro.tree.node import Node
from repro.tree.splitter import SplitCandidate, partition
from repro.tree.surrogates import (
    find_surrogate_splits,
    find_surrogate_splits_presorted,
    route_left_with_surrogates,
)
from repro.utils.validation import check_2d, check_in_choices, check_positive

#: Inference backends: "compiled" routes through the flat-array
#: :class:`~repro.tree.compiled.CompiledTree`; "node" walks the Figure-1
#: object graph (the reference implementation / escape hatch).
BACKENDS = ("compiled", "node")


class ServingScorerMixin:
    """Serving-layer scoring entry points for fitted estimators.

    Anything with a vectorized ``predict`` gains the two callables the
    streaming layer (:class:`~repro.detection.streaming.FleetMonitor`)
    consumes: :meth:`sample_scorer` scores one feature row through a
    batch of one, :meth:`batch_scorer` scores a stacked
    ``(n_rows, n_features)`` matrix in a single call — one compiled
    routing pass per collection tick on estimators with a compiled
    backend.  Both close over ``self``, so :meth:`sample_scorer` and
    :meth:`batch_scorer` track later refits of the same estimator.
    """

    def sample_scorer(self):
        """A ``row -> float`` scorer for per-record serving."""

        def score_sample(row: np.ndarray) -> float:
            matrix = np.asarray(row, dtype=float).reshape(1, -1)
            return float(self.predict(matrix)[0])

        return score_sample

    def batch_scorer(self):
        """A ``matrix -> scores`` scorer for whole-tick serving."""

        def score_batch(X: np.ndarray) -> np.ndarray:
            return np.asarray(self.predict(X), dtype=float)

        return score_batch


class BaseDecisionTree(ServingScorerMixin, ABC):
    """Common fit/apply/prune logic for classification and regression trees.

    Parameters mirror the paper's (and rpart's) controls:

    Args:
        minsplit: Minimum number of samples a node must hold to be
            considered for splitting (paper default 20).
        minbucket: Minimum number of samples in any leaf (paper default 7).
        cp: Complexity parameter; a split must improve the tree's overall
            relative criterion by at least ``cp`` to survive pruning
            (paper default 0.001).
        max_depth: Optional hard depth cap (``None`` = grow until the
            split conditions stop the recursion, as in the paper).
        n_surrogates: Surrogate splits kept per node for missing-value
            routing (0 = rpart surrogates disabled; NaNs then follow the
            heavier child).
        backend: Inference backend — ``"compiled"`` (default) scores
            through the flat-array :class:`CompiledTree`; ``"node"``
            walks the Figure-1 object graph (reference implementation).
            Both produce bit-identical outputs; fitting is unaffected.
        presort: Training-side twin of ``backend``.  ``True`` (default)
            argsorts every feature column once per fit and maintains
            per-node sorted index partitions down the tree
            (:class:`~repro.tree.frontier.TrainingFrontier`), making
            node-level split and surrogate search linear scans;
            ``False`` re-sorts at every node (the Algorithm 1/2
            transcription, kept as the reference).  Both produce
            node-for-node identical trees.
    """

    def __init__(
        self,
        minsplit: int = 20,
        minbucket: int = 7,
        cp: float = 0.001,
        max_depth: Optional[int] = None,
        n_surrogates: int = 0,
        backend: str = "compiled",
        presort: bool = True,
    ):
        self.minsplit = int(check_positive("minsplit", minsplit))
        self.minbucket = int(check_positive("minbucket", minbucket))
        if cp < 0:
            raise ValueError(f"cp must be >= 0, got {cp}")
        self.cp = float(cp)
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        self.max_depth = max_depth
        if n_surrogates < 0:
            raise ValueError(f"n_surrogates must be >= 0, got {n_surrogates}")
        self.n_surrogates = int(n_surrogates)
        self.backend = check_in_choices("backend", backend, BACKENDS)
        self.presort = bool(presort)
        self.root_: Optional[Node] = None
        self.compiled_: Optional[CompiledTree] = None
        self.n_features_: Optional[int] = None

    # -- subclass hooks -----------------------------------------------------

    @abstractmethod
    def _node_statistics(self, indices: np.ndarray) -> tuple[float, float, Optional[np.ndarray], float]:
        """Return (prediction, impurity, class_distribution, weight) for a node."""

    @abstractmethod
    def _is_pure(self, indices: np.ndarray) -> bool:
        """True when the node's samples all share one target value."""

    @abstractmethod
    def _search_split(
        self, indices: np.ndarray, frontier_node: Optional[FrontierNode] = None
    ) -> Optional[SplitCandidate]:
        """Best split over the node's samples, or None.

        ``frontier_node`` is the node's presorted partition when the
        tree was constructed with ``presort=True``; ``None`` selects the
        per-node re-sorting reference path.
        """

    @abstractmethod
    def _relative_gain(self, node: Node, root: Node) -> float:
        """Node split gain expressed as a fraction of the root criterion."""

    # -- fitting ------------------------------------------------------------

    def _grow(self, X: np.ndarray, sample_weight: np.ndarray) -> None:
        """Grow the full tree (Algorithm 1/2 lines 2-17), then CP-prune."""
        registry = get_registry()
        # Clock reads only happen on the enabled path; the null registry
        # turns every record below into a constant-time no-op.
        split_hist = registry.histogram(
            "fit.split_search_seconds", unit="seconds",
            help="node-level split search wall time",
        ) if registry.enabled else None
        fit_start = perf_counter() if registry.enabled else 0.0
        n_splits = 0
        with get_tracer().span(
            "fit.grow", category="fit",
            n_rows=int(X.shape[0]), n_features=int(X.shape[1]),
        ):
            self._X = X
            self._w = sample_weight
            all_indices = np.arange(X.shape[0])
            self.root_ = self._create_node(node_id=1, depth=0, indices=all_indices)
            root_frontier = TrainingFrontier(X).root if self.presort else None
            stack: list[tuple[Node, np.ndarray, Optional[FrontierNode]]] = [
                (self.root_, all_indices, root_frontier)
            ]
            while stack:
                node, indices, frontier_node = stack.pop()
                if not self._may_split(node, indices):
                    continue
                if split_hist is not None:
                    search_start = perf_counter()
                    candidate = self._search_split(indices, frontier_node)
                    split_hist.observe(perf_counter() - search_start)
                else:
                    candidate = self._search_split(indices, frontier_node)
                if candidate is None:
                    continue
                surrogates = self._find_surrogates(indices, candidate, frontier_node)
                left_mask, right_mask = self._partition_training_rows(
                    indices, candidate, surrogates
                )
                left_idx = indices[left_mask]
                right_idx = indices[right_mask]
                if len(left_idx) == 0 or len(right_idx) == 0:
                    # NaN routing can empty a side even though the finite-value
                    # split was admissible; treat the node as unsplittable.
                    continue
                node.feature = candidate.feature
                node.threshold = candidate.threshold
                node.missing_goes_left = candidate.missing_goes_left
                node.surrogates = surrogates
                node.gain = candidate.gain
                node.left = self._create_node(2 * node.node_id, node.depth + 1, left_idx)
                node.right = self._create_node(2 * node.node_id + 1, node.depth + 1, right_idx)
                n_splits += 1
                if frontier_node is not None:
                    # Skip materialising a child's partition when Minsplit or
                    # the depth cap already rules out splitting it.
                    left_frontier, right_frontier = frontier_node.split(
                        left_idx,
                        keep_left=self._child_may_split(len(left_idx), node.depth + 1),
                        keep_right=self._child_may_split(len(right_idx), node.depth + 1),
                    )
                else:
                    left_frontier = right_frontier = None
                stack.append((node.left, left_idx, left_frontier))
                stack.append((node.right, right_idx, right_frontier))
            self._prune(self.cp)
            del self._X, self._w
            self.recompile()
        registry.counter("fit.trees", help="trees grown").inc()
        registry.counter("fit.rows", help="training rows seen").inc(X.shape[0])
        registry.counter("fit.nodes_split", help="internal nodes created").inc(n_splits)
        if registry.enabled:
            registry.histogram(
                "fit.seconds", unit="seconds", help="whole-tree growth wall time"
            ).observe(perf_counter() - fit_start)

    def recompile(self) -> None:
        """Rebuild the flat-array form from ``root_``.

        Called automatically after fitting; call it manually after
        mutating ``root_`` in place (e.g. custom pruning) so the
        compiled backend stays in sync with the object graph.
        """
        self.compiled_ = compile_tree(self.root_)

    def _child_may_split(self, n_samples: int, depth: int) -> bool:
        """The cheap half of :meth:`_may_split` (no target access)."""
        if n_samples < self.minsplit:
            return False
        return self.max_depth is None or depth < self.max_depth

    def _partition_training_rows(
        self,
        indices: np.ndarray,
        candidate: SplitCandidate,
        surrogates,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Left/right masks for a training node, without copying X[indices].

        Same routing as :meth:`_partition_rows` (primary split, then
        surrogates, then the majority fallback for missing values), but
        gathers only the split column plus the individual missing-value
        rows instead of the node's full feature matrix.
        """
        column = self._X[indices, candidate.feature]
        left, right = partition(
            column, candidate.threshold, candidate.missing_goes_left
        )
        if surrogates:
            for position in np.nonzero(~np.isfinite(column))[0]:
                goes_left = route_left_with_surrogates(
                    self._X[indices[position]],
                    candidate.feature,
                    candidate.threshold,
                    surrogates,
                    candidate.missing_goes_left,
                )
                left[position] = goes_left
                right[position] = not goes_left
        return left, right

    def _find_surrogates(
        self,
        indices: np.ndarray,
        candidate: SplitCandidate,
        frontier_node: Optional[FrontierNode] = None,
    ):
        """Rank surrogate splits on the node's primary-routable samples."""
        if self.n_surrogates <= 0:
            return ()
        if frontier_node is not None:
            return find_surrogate_splits_presorted(
                frontier_node,
                self._X,
                self._w,
                indices,
                primary_feature=candidate.feature,
                primary_threshold=candidate.threshold,
                max_surrogates=self.n_surrogates,
            )
        rows = self._X[indices]
        column = rows[:, candidate.feature]
        finite = np.isfinite(column)
        if finite.sum() < 2:
            return ()
        return find_surrogate_splits(
            rows[finite],
            column[finite] < candidate.threshold,
            self._w[indices][finite],
            exclude_feature=candidate.feature,
            max_surrogates=self.n_surrogates,
        )

    @staticmethod
    def _partition_rows(
        rows: np.ndarray,
        feature: int,
        threshold: float,
        surrogates,
        missing_goes_left: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Left/right masks using the primary split, surrogates, fallback."""
        column = rows[:, feature]
        left, right = partition(column, threshold, missing_goes_left)
        if surrogates:
            for index in np.nonzero(~np.isfinite(column))[0]:
                goes_left = route_left_with_surrogates(
                    rows[index], feature, threshold, surrogates, missing_goes_left
                )
                left[index] = goes_left
                right[index] = not goes_left
        return left, right

    def _may_split(self, node: Node, indices: np.ndarray) -> bool:
        """The paper's split conditions: Minsplit, optional depth, purity."""
        if len(indices) < self.minsplit:
            return False
        if self.max_depth is not None and node.depth >= self.max_depth:
            return False
        return not self._is_pure(indices)

    def _create_node(self, node_id: int, depth: int, indices: np.ndarray) -> Node:
        prediction, impurity, distribution, weight = self._node_statistics(indices)
        return Node(
            node_id=node_id,
            depth=depth,
            n_samples=len(indices),
            weight=weight,
            prediction=prediction,
            impurity=impurity,
            class_distribution=distribution,
        )

    def _prune(self, cp: float) -> None:
        """Prune every subtree whose split gain is below ``cp`` (relative).

        Matches Algorithm 1/2 lines 18-22: the check is applied top-down
        and a failing node loses its *entire* subtree, even if deeper
        splits individually look strong.
        """
        root = self.root_
        if root is None or root.is_leaf:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            if self._relative_gain(node, root) < cp:
                node.make_leaf()
                continue
            stack.append(node.left)
            stack.append(node.right)

    # -- inference ----------------------------------------------------------

    def _check_fitted(self) -> Node:
        if self.root_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )
        return self.root_

    def _validate_X(self, X: object) -> np.ndarray:
        matrix = check_2d("X", X)
        if matrix.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {matrix.shape[1]} features, tree was fitted on {self.n_features_}"
            )
        return matrix

    def _use_compiled(self) -> Optional[CompiledTree]:
        """The compiled form when the compiled backend is active, else None."""
        if self.backend != "compiled":
            return None
        if self.compiled_ is None:
            self.recompile()
        return self.compiled_

    def apply(self, X: object) -> np.ndarray:
        """Return the id of the leaf each row of ``X`` lands in."""
        root = self._check_fitted()
        matrix = self._validate_X(X)
        compiled = self._use_compiled()
        if compiled is not None:
            return compiled.apply(matrix)
        return self._route_rows_node_ids(root, matrix)

    def _leaf_predictions(self, X: np.ndarray) -> np.ndarray:
        """Per-row leaf ``prediction`` values."""
        root = self._check_fitted()
        matrix = self._validate_X(X)
        compiled = self._use_compiled()
        if compiled is not None:
            return compiled.predict(matrix)
        return self._route_rows_predictions(root, matrix)

    # Reference (node-walk) routing.  Each leaf accessor is typed and
    # explicit — no string-keyed getattr dispatch — and both share the
    # same recursive partitioning so backend="node" remains the oracle
    # the compiled arrays are validated against.

    @classmethod
    def _route_rows_node_ids(cls, root: Node, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.int64)
        cls._route_rows(root, X, out, lambda leaf: leaf.node_id)
        return out

    @classmethod
    def _route_rows_predictions(cls, root: Node, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=float)
        cls._route_rows(root, X, out, lambda leaf: leaf.prediction)
        return out

    @staticmethod
    def _route_rows(root: Node, X: np.ndarray, out: np.ndarray, leaf_value) -> None:
        """Descend all rows through the tree, writing ``leaf_value(leaf)`` to ``out``."""
        stack = [(root, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if len(rows) == 0:
                continue
            if node.is_leaf:
                out[rows] = leaf_value(node)
                continue
            left_mask, right_mask = BaseDecisionTree._partition_rows(
                X[rows], node.feature, node.threshold,
                node.surrogates, node.missing_goes_left,
            )
            stack.append((node.left, rows[left_mask]))
            stack.append((node.right, rows[right_mask]))

    # -- introspection --------------------------------------------------------

    @property
    def n_leaves_(self) -> int:
        """Leaf count of the fitted tree."""
        return self._check_fitted().count_leaves()

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        return self._check_fitted().subtree_depth()

    def feature_importances(self) -> np.ndarray:
        """Gain-weighted feature importances, normalised to sum to one.

        Each internal node contributes its criterion gain scaled by the
        fraction of root weight it sees; pure decision-stump usage of a
        feature near the root therefore dominates deep incidental splits.
        This is the quantity behind the paper's interpretability claims
        ("the significant attributes inducing failures").
        """
        root = self._check_fitted()
        importances = np.zeros(self.n_features_, dtype=float)
        for node in root.iter_nodes():
            if not node.is_leaf:
                importances[node.feature] += node.gain * (node.weight / root.weight)
        total = importances.sum()
        return importances / total if total > 0 else importances

    def decision_path(self, sample: object) -> list[Node]:
        """The root-to-leaf node sequence a single 1-D sample follows."""
        root = self._check_fitted()
        row = np.asarray(sample, dtype=float)
        if row.ndim != 1 or row.shape[0] != self.n_features_:
            raise ValueError(
                f"sample must be 1-D with {self.n_features_} features, got shape {row.shape}"
            )
        compiled = self._use_compiled()
        if compiled is not None:
            by_id = {node.node_id: node for node in root.iter_nodes()}
            return [by_id[nid] for nid in compiled.decision_path_ids(row)]
        path = [root]
        node = root
        while not node.is_leaf:
            node = node.route(row)
            path.append(node)
        return path

    def decision_paths(self, X: object) -> list[tuple[int, ...]]:
        """Root-to-leaf node-id chains for every row of ``X``, batched.

        The batched counterpart of :meth:`decision_path`: rows are
        routed to leaves in one :meth:`apply` call (the compiled hot
        path when that backend is active) and each leaf's ancestor
        chain is recovered from the heap id convention (parent of
        ``i`` is ``i // 2``), so the result is bit-identical across
        backends by construction.  One tuple of node ids per row,
        root (id 1) first, leaf last — the fleet-scale path extraction
        :mod:`repro.explain` aggregates over.
        """
        self._check_fitted()
        leaf_ids = self.apply(X)
        chains: dict[int, tuple[int, ...]] = {}
        paths = []
        for leaf_id in leaf_ids.tolist():
            chain = chains.get(leaf_id)
            if chain is None:
                ancestors = []
                node_id = int(leaf_id)
                while node_id >= 1:
                    ancestors.append(node_id)
                    node_id //= 2
                chain = tuple(reversed(ancestors))
                chains[leaf_id] = chain
            paths.append(chain)
        return paths
