"""Tree node structure shared by the classification and regression trees.

Nodes follow the paper's Figure 1 layout: an internal node carries the
split ``feature``/``threshold`` (samples with ``x[feature] < threshold``
go left, matching the figure's "Yes" branches), a leaf carries the
prediction.  Every node also records the class/target statistics of the
training data that reached it so the fitted tree can be rendered exactly
like Figure 1 (per-node probability distribution + sample share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tree.surrogates import SurrogateSplit


@dataclass
class Node:
    """One node of a fitted CART tree.

    Attributes:
        node_id: Breadth-first identifier; the root is 1, the children of
            node ``i`` are ``2i`` and ``2i + 1`` (the numbering used in
            the paper's Figure 1).
        depth: Root depth is 0.
        n_samples: Number of training samples that reached the node.
        weight: Total (re-weighted) sample weight at the node.
        prediction: Majority/loss-minimising class label (classification)
            or weighted target mean (regression).
        class_distribution: Per-class weight fractions (classification
            only; ``None`` for regression nodes).
        impurity: Entropy/Gini (classification) or within-node sum of
            squares (regression) at the node.
        feature: Split feature index, or ``None`` for a leaf.
        threshold: Split threshold; samples with value < threshold go left.
        missing_goes_left: Where samples with a missing (NaN) split value
            are routed at prediction time when no surrogate applies
            (the heavier child at fit time).
        surrogates: Ranked surrogate splits consulted when the primary
            split value is missing (empty unless the tree was fitted
            with ``n_surrogates > 0``).
        gain: The split's criterion improvement (information gain or SSE
            reduction), 0.0 at leaves.
        left/right: Child nodes, ``None`` for a leaf.
    """

    node_id: int
    depth: int
    n_samples: int
    weight: float
    prediction: float
    impurity: float
    class_distribution: Optional[np.ndarray] = None
    feature: Optional[int] = None
    threshold: Optional[float] = None
    missing_goes_left: bool = True
    surrogates: tuple["SurrogateSplit", ...] = ()
    gain: float = 0.0
    left: Optional["Node"] = None
    right: Optional["Node"] = None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.feature is None

    def make_leaf(self) -> None:
        """Collapse the subtree rooted here into a leaf (used by pruning)."""
        self.feature = None
        self.threshold = None
        self.surrogates = ()
        self.gain = 0.0
        self.left = None
        self.right = None

    def route(self, sample: np.ndarray) -> "Node":
        """Return the child the 1-D ``sample`` descends to (internal nodes)."""
        from repro.tree.surrogates import route_left_with_surrogates

        if self.is_leaf:
            raise ValueError(f"node {self.node_id} is a leaf and routes nowhere")
        goes_left = route_left_with_surrogates(
            sample, self.feature, self.threshold, self.surrogates,
            self.missing_goes_left,
        )
        return self.left if goes_left else self.right

    def iter_nodes(self) -> Iterator["Node"]:
        """Yield this node and every descendant in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def count_leaves(self) -> int:
        """Number of leaves in the subtree rooted here."""
        return sum(1 for node in self.iter_nodes() if node.is_leaf)

    def subtree_depth(self) -> int:
        """Maximum node depth within this subtree, relative to the root tree."""
        return max(node.depth for node in self.iter_nodes())
