"""Bagged regression forest (health-degree future work).

The paper closes: "It is worthwhile to study other methods to build
more effective health degree models."  The natural first step beyond a
single RT is variance reduction by bagging: an ensemble of regression
trees on bootstrap resamples (optionally with per-tree feature masking)
whose averaged output is a smoother, lower-variance health degree.
Plugs into :class:`~repro.health.model.HealthDegreePredictor` via its
``regressor_factory`` hook.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tree.bagging import subsample_member_inputs
from repro.tree.base import ServingScorerMixin
from repro.tree.compiled import CompiledForest
from repro.tree.regression import RegressionTree
from repro.utils.parallel import run_tasks
from repro.utils.rng import RandomState, as_rng, spawn_child
from repro.utils.validation import check_1d, check_2d, check_matching_length


def _fit_member(context, task):
    """Fit one forest member (module-level so worker processes can call it)."""
    matrix, targets, weights, tree_params, bootstrap, n_active = context
    index, tree_rng = task
    inputs, rows, _ = subsample_member_inputs(
        tree_rng, matrix, n_active=n_active, bootstrap=bootstrap
    )
    tree = RegressionTree(**tree_params)
    tree.fit(
        inputs,
        targets[rows],
        sample_weight=None if weights is None else weights[rows],
    )
    return tree


class RandomForestRegressor(ServingScorerMixin):
    """Bootstrap-aggregated :class:`RegressionTree` ensemble.

    Args:
        n_trees: Ensemble size.
        max_features: Features visible per tree: ``"sqrt"``, an int, or
            ``None`` for all (plain bagging).
        minsplit/minbucket/cp/max_depth: Forwarded to every member.
        bootstrap: Resample rows with replacement per tree.
        seed: Seed for reproducible resampling.
        backend: ``"compiled"`` (default) scores the stacked
            :class:`~repro.tree.compiled.CompiledForest` in one pass;
            ``"node"`` loops the reference per-tree walk.
        n_jobs: Worker processes for fitting members (``None`` defers to
            ``REPRO_N_JOBS``, default serial; ``0``/negative = all
            cores).  Fitted members are identical at any ``n_jobs``.
    """

    def __init__(
        self,
        n_trees: int = 20,
        max_features: object = None,
        minsplit: int = 20,
        minbucket: int = 7,
        cp: float = 0.004,
        max_depth: Optional[int] = None,
        bootstrap: bool = True,
        seed: RandomState = None,
        backend: str = "compiled",
        n_jobs: Optional[int] = None,
    ):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = int(n_trees)
        self.max_features = max_features
        self.backend = backend
        self.tree_params = dict(
            minsplit=minsplit, minbucket=minbucket, cp=cp, max_depth=max_depth,
            backend=backend,
        )
        self.bootstrap = bool(bootstrap)
        self.seed = seed
        self.n_jobs = n_jobs
        self.trees_: list[RegressionTree] = []
        self._compiled_forest: Optional[CompiledForest] = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        count = int(self.max_features)
        if not 1 <= count <= n_features:
            raise ValueError(
                f"max_features must be in [1, {n_features}], got {self.max_features!r}"
            )
        return count

    def fit(
        self,
        X: object,
        y: Sequence[float],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "RandomForestRegressor":
        """Fit the ensemble on bootstrap resamples."""
        matrix = check_2d("X", X)
        targets = check_1d("y", y)
        check_matching_length(("X", matrix), ("y", targets))
        weights = None if sample_weight is None else np.asarray(sample_weight, dtype=float)
        rng = as_rng(self.seed)
        n_active = self._resolve_max_features(matrix.shape[1])

        # Per-task spawned generators keep members identical at any n_jobs.
        context = (matrix, targets, weights, self.tree_params, self.bootstrap, n_active)
        tasks = [(index, spawn_child(rng, index)) for index in range(self.n_trees)]
        self.trees_ = run_tasks(
            _fit_member, tasks, n_jobs=self.n_jobs, context=context
        )
        self._compiled_forest = None
        return self

    def predict(self, X: object) -> np.ndarray:
        """Ensemble-averaged predictions."""
        if not self.trees_:
            raise RuntimeError("RandomForestRegressor is not fitted; call fit() first")
        matrix = check_2d("X", X)
        if self.backend == "compiled":
            if self._compiled_forest is None:
                self._compiled_forest = CompiledForest(
                    [tree.compiled_ for tree in self.trees_]
                )
            return np.mean(self._compiled_forest.predict_matrix(matrix), axis=0)
        return np.mean([tree.predict(matrix) for tree in self.trees_], axis=0)
