"""The paper's Classification Tree (CT) model — Algorithm 1.

Information-gain splitting (formulas 1-3), Minsplit/Minbucket split
conditions, CP pruning, and the two training strategies of Section V-A3:

* **class re-weighting** — boost the failed class so it occupies a target
  share of the training mass (the paper uses 20%/80%); see
  :func:`weights_for_priors` and the ``class_weight`` argument;
* **loss weighting** — penalise false alarms more than missed detections
  (the paper uses 10x) via a loss matrix, which both re-weights classes
  during split search (rpart's "altered priors") and moves leaf labels to
  the loss-minimising class.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.tree.base import BaseDecisionTree
from repro.tree.criteria import node_impurity
from repro.tree.node import Node
from repro.tree.splitter import (
    SplitCandidate,
    find_best_split,
    find_best_split_presorted,
)
from repro.utils.validation import check_1d, check_2d, check_matching_length

ClassWeight = Union[None, str, Mapping[object, float]]


def weights_for_priors(
    y: Sequence[object], priors: Mapping[object, float]
) -> np.ndarray:
    """Per-sample weights that give each class the requested prior share.

    The paper "adjusts the failed sample set to occupy 20% of the total
    and the good sample set to occupy 80%"; with
    ``priors={-1: 0.2, +1: 0.8}`` the returned weights reproduce exactly
    that re-balancing regardless of the raw class counts.
    """
    labels = np.asarray(y)
    classes, counts = np.unique(labels, return_counts=True)
    missing = [c for c in classes if c not in priors]
    if missing:
        raise ValueError(f"priors missing entries for classes {missing}")
    total_prior = sum(priors[c] for c in classes)
    if total_prior <= 0:
        raise ValueError("priors must have positive total")
    weights = np.empty(labels.shape[0], dtype=float)
    for cls, count in zip(classes, counts):
        weights[labels == cls] = (priors[cls] / total_prior) * labels.shape[0] / count
    return weights


class ClassificationTree(BaseDecisionTree):
    """CART classifier implementing the paper's Algorithm 1.

    Args:
        minsplit: Minimum samples at a node to attempt a split (paper: 20).
        minbucket: Minimum samples at any leaf (paper: 7).
        cp: Complexity parameter for pruning (paper: 0.001).
        criterion: ``"entropy"`` (the paper's information gain) or
            ``"gini"``.
        class_weight: ``None``, a ``{label: weight}`` mapping, or
            ``"balanced"`` (equal total weight per class).
        loss_matrix: Optional (C, C) cost matrix in the order of the
            sorted class labels; ``loss_matrix[i, j]`` is the cost of
            predicting class ``j`` for a sample of true class ``i``.
        max_depth: Optional depth cap.
        n_surrogates: Surrogate splits per node for missing-value
            routing (rpart behaviour; 0 disables).
        backend: ``"compiled"`` (default, flat-array inference) or
            ``"node"`` (reference object-graph walk); outputs are
            bit-identical.
        presort: ``True`` (default) trains through the presorted
            columnar frontier; ``False`` re-sorts per node (reference).
            Fitted trees are node-for-node identical either way.

    Example:
        >>> tree = ClassificationTree(minsplit=2, minbucket=1, cp=0.0)
        >>> _ = tree.fit([[0.0], [1.0], [2.0], [3.0]], [-1, -1, 1, 1])
        >>> tree.predict([[0.5], [2.5]]).tolist()
        [-1, 1]
    """

    def __init__(
        self,
        minsplit: int = 20,
        minbucket: int = 7,
        cp: float = 0.001,
        criterion: str = "entropy",
        class_weight: ClassWeight = None,
        loss_matrix: Optional[Sequence[Sequence[float]]] = None,
        max_depth: Optional[int] = None,
        n_surrogates: int = 0,
        backend: str = "compiled",
        presort: bool = True,
    ):
        super().__init__(
            minsplit=minsplit, minbucket=minbucket, cp=cp,
            max_depth=max_depth, n_surrogates=n_surrogates, backend=backend,
            presort=presort,
        )
        if criterion not in ("entropy", "gini"):
            raise ValueError(f"criterion must be 'entropy' or 'gini', got {criterion!r}")
        self.criterion = criterion
        self.class_weight = class_weight
        self.loss_matrix = None if loss_matrix is None else np.asarray(loss_matrix, dtype=float)
        self.classes_: Optional[np.ndarray] = None

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        X: object,
        y: Sequence[object],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "ClassificationTree":
        """Fit the tree on feature matrix ``X`` and class labels ``y``."""
        matrix = check_2d("X", X)
        labels = np.asarray(y)
        check_matching_length(("X", matrix), ("y", labels))
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, class_indices = np.unique(labels, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 1:
            raise ValueError("y contains no classes")
        loss = self._validated_loss(n_classes)

        weights = (
            np.ones(matrix.shape[0], dtype=float)
            if sample_weight is None
            else check_1d("sample_weight", sample_weight)
        )
        check_matching_length(("X", matrix), ("sample_weight", weights))
        if np.any(weights < 0):
            raise ValueError("sample_weight must be non-negative")
        weights = weights * self._class_weight_vector(class_indices, n_classes)
        if loss is not None:
            # rpart-style altered priors: scale each class by the cost of
            # misclassifying it, so the split search already favours the
            # expensive class.
            per_class_cost = loss.sum(axis=1)
            scale = np.where(per_class_cost > 0, per_class_cost, 1.0)
            weights = weights * scale[class_indices]

        self._class_indices = class_indices
        self._n_classes = n_classes
        self._loss = loss
        # Fit-wide per-class weight columns for the presorted two-class
        # fast path; products commute with row gathering, so hoisting
        # them out of the node loop changes no scored float.
        self._binary_class_weights = (
            (
                np.where(class_indices == 0, weights, 0.0),
                np.where(class_indices == 1, weights, 0.0),
            )
            if self.presort and n_classes == 2
            else None
        )
        self.n_features_ = matrix.shape[1]
        self._grow(matrix, weights)
        del self._class_indices, self._binary_class_weights
        return self

    def _validated_loss(self, n_classes: int) -> Optional[np.ndarray]:
        if self.loss_matrix is None:
            return None
        loss = self.loss_matrix
        if loss.shape != (n_classes, n_classes):
            raise ValueError(
                f"loss_matrix must be ({n_classes}, {n_classes}) for the "
                f"observed classes, got {loss.shape}"
            )
        if np.any(loss < 0) or np.any(np.diag(loss) != 0):
            raise ValueError("loss_matrix needs non-negative costs and a zero diagonal")
        return loss

    def _class_weight_vector(self, class_indices: np.ndarray, n_classes: int) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(class_indices.shape[0], dtype=float)
        if self.class_weight == "balanced":
            counts = np.bincount(class_indices, minlength=n_classes).astype(float)
            per_class = class_indices.shape[0] / (n_classes * np.maximum(counts, 1.0))
            return per_class[class_indices]
        if isinstance(self.class_weight, Mapping):
            per_class = np.ones(n_classes, dtype=float)
            for label, weight in self.class_weight.items():
                matches = np.nonzero(self.classes_ == label)[0]
                if matches.size == 0:
                    raise ValueError(f"class_weight names unknown class {label!r}")
                per_class[matches[0]] = float(weight)
            return per_class[class_indices]
        raise ValueError(
            f"class_weight must be None, 'balanced' or a mapping, got {self.class_weight!r}"
        )

    # -- BaseDecisionTree hooks ----------------------------------------------

    def _node_statistics(self, indices: np.ndarray):
        class_totals = np.bincount(
            self._class_indices[indices],
            weights=self._w[indices],
            minlength=self._n_classes,
        )
        weight = float(class_totals.sum())
        distribution = class_totals / weight if weight > 0 else class_totals
        if self._loss is None:
            label_index = int(np.argmax(class_totals))
        else:
            expected_costs = class_totals @ self._loss
            label_index = int(np.argmin(expected_costs))
        prediction = float(self.classes_[label_index])
        impurity = node_impurity(self.criterion, class_totals)
        return prediction, impurity, distribution, weight

    def _is_pure(self, indices: np.ndarray) -> bool:
        node_classes = self._class_indices[indices]
        return bool(np.all(node_classes == node_classes[0]))

    def _search_split(self, indices, frontier_node=None) -> Optional[SplitCandidate]:
        if frontier_node is not None:
            return find_best_split_presorted(
                frontier_node,
                self._X,
                indices,
                task="classification",
                weights=self._w,
                minbucket=self.minbucket,
                class_indices=self._class_indices,
                n_classes=self._n_classes,
                criterion=self.criterion,
                binary_class_weights=self._binary_class_weights,
            )
        return find_best_split(
            self._X[indices],
            task="classification",
            weights=self._w[indices],
            minbucket=self.minbucket,
            class_indices=self._class_indices[indices],
            n_classes=self._n_classes,
            criterion=self.criterion,
        )

    def _relative_gain(self, node: Node, root: Node) -> float:
        if root.impurity <= 0 or root.weight <= 0:
            return 0.0
        return node.gain * (node.weight / root.weight) / root.impurity

    # -- inference ------------------------------------------------------------

    def predict(self, X: object) -> np.ndarray:
        """Predicted class label for each row of ``X``."""
        raw = self._leaf_predictions(X)
        if np.issubdtype(self.classes_.dtype, np.integer):
            return raw.astype(self.classes_.dtype)
        return raw

    def predict_proba(self, X: object) -> np.ndarray:
        """Per-class probability (leaf class distribution) for each row.

        With the compiled backend this is one routing pass plus a single
        fancy-index into the ``(n_nodes, n_classes)`` leaf-value matrix;
        the node backend walks the object graph (reference path).
        """
        root = self._check_fitted()
        matrix = self._validate_X(X)
        compiled = self._use_compiled()
        if compiled is not None:
            return compiled.predict_values(matrix)
        leaf_ids = self._route_rows_node_ids(root, matrix)
        by_id = {
            node.node_id: node.class_distribution
            for node in root.iter_nodes()
            if node.is_leaf
        }
        return np.vstack([by_id[int(i)] for i in leaf_ids])
