"""Surrogate splits for missing values (rpart's mechanism).

The paper's R/rpart substrate routes a sample whose primary split value
is missing through *surrogate splits*: alternative (feature, threshold)
rules chosen because they best mimic the primary split's left/right
assignment on the training data, tried in agreement order, with the
majority direction as the last resort.  Our default trees use only the
majority-direction fallback (missing SMART readings are rare); enabling
``surrogates=k`` on a tree reproduces rpart's behaviour and measurably
helps when whole attributes go unreported.

A surrogate is kept only if its weighted agreement with the primary
assignment beats the blind majority rule — rpart's admission criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SurrogateSplit:
    """One surrogate rule: mimic the primary split via another feature.

    ``less_goes_left`` is True when ``x[feature] < threshold`` should
    follow the primary split's *left* branch (surrogates may correlate
    negatively with the primary, reversing the direction).
    ``agreement`` is the weighted fraction of primary-routable training
    samples the rule assigns to the same side.
    """

    feature: int
    threshold: float
    less_goes_left: bool
    agreement: float


def find_surrogate_splits(
    X: np.ndarray,
    primary_left: np.ndarray,
    weights: np.ndarray,
    *,
    exclude_feature: int,
    max_surrogates: int = 3,
) -> tuple[SurrogateSplit, ...]:
    """Rank surrogate rules that mimic a primary split.

    Args:
        X: The node's sample matrix.
        primary_left: Boolean mask — the primary split's left assignment
            (only rows with a finite primary value should be passed).
        weights: Sample weights aligned with ``X``.
        exclude_feature: The primary split's feature (never a surrogate).
        max_surrogates: How many rules to keep (rpart default keeps up
            to 5; we default to 3).

    Returns surrogates sorted by agreement, best first; only rules that
    beat the majority-direction baseline are admitted.
    """
    if max_surrogates <= 0 or X.shape[0] == 0:
        return ()
    left_weight = float(weights[primary_left].sum())
    right_weight = float(weights[~primary_left].sum())
    total = left_weight + right_weight
    if total <= 0:
        return ()
    baseline = max(left_weight, right_weight) / total

    found: list[SurrogateSplit] = []
    for feature in range(X.shape[1]):
        if feature == exclude_feature:
            continue
        column = X[:, feature]
        finite = np.isfinite(column)
        if finite.sum() < 2:
            continue
        x = column[finite]
        is_left = primary_left[finite]
        w = weights[finite]
        observed = float(w.sum())
        if observed <= 0:
            continue

        order = np.argsort(x, kind="stable")
        x_sorted = x[order]
        boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
        if boundaries.size == 0:
            continue
        left_w = np.where(is_left[order], w[order], 0.0)
        right_w = np.where(is_left[order], 0.0, w[order])
        cum_left = np.cumsum(left_w)
        cum_right = np.cumsum(right_w)
        total_left = cum_left[-1]
        total_right = cum_right[-1]

        # "x < thr goes left": matches = left-labeled below + right-labeled above.
        normal = cum_left[boundaries] + (total_right - cum_right[boundaries])
        # Reversed direction: the complement.
        reversed_ = cum_right[boundaries] + (total_left - cum_left[boundaries])

        best_normal = int(np.argmax(normal))
        best_reversed = int(np.argmax(reversed_))
        if normal[best_normal] >= reversed_[best_reversed]:
            boundary, matched, less_left = best_normal, normal[best_normal], True
        else:
            boundary, matched, less_left = best_reversed, reversed_[best_reversed], False
        agreement = float(matched) / observed
        if agreement <= baseline + 1e-12:
            continue
        index = boundaries[boundary]
        threshold = float((x_sorted[index] + x_sorted[index + 1]) / 2.0)
        found.append(
            SurrogateSplit(
                feature=int(feature),
                threshold=threshold,
                less_goes_left=less_left,
                agreement=agreement,
            )
        )

    found.sort(key=lambda s: s.agreement, reverse=True)
    return tuple(found[:max_surrogates])


def route_left_with_surrogates(
    sample: np.ndarray,
    primary_feature: int,
    primary_threshold: float,
    surrogates: tuple[SurrogateSplit, ...],
    missing_goes_left: bool,
) -> bool:
    """Decide a single sample's branch using primary, surrogates, fallback."""
    value = sample[primary_feature]
    if np.isfinite(value):
        return bool(value < primary_threshold)
    for surrogate in surrogates:
        candidate = sample[surrogate.feature]
        if np.isfinite(candidate):
            goes_less = bool(candidate < surrogate.threshold)
            return goes_less if surrogate.less_goes_left else not goes_less
    return missing_goes_left
