"""Surrogate splits for missing values (rpart's mechanism).

The paper's R/rpart substrate routes a sample whose primary split value
is missing through *surrogate splits*: alternative (feature, threshold)
rules chosen because they best mimic the primary split's left/right
assignment on the training data, tried in agreement order, with the
majority direction as the last resort.  Our default trees use only the
majority-direction fallback (missing SMART readings are rare); enabling
``surrogates=k`` on a tree reproduces rpart's behaviour and measurably
helps when whole attributes go unreported.

A surrogate is kept only if its weighted agreement with the primary
assignment beats the blind majority rule — rpart's admission criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tree.frontier import FrontierNode


@dataclass(frozen=True)
class SurrogateSplit:
    """One surrogate rule: mimic the primary split via another feature.

    ``less_goes_left`` is True when ``x[feature] < threshold`` should
    follow the primary split's *left* branch (surrogates may correlate
    negatively with the primary, reversing the direction).
    ``agreement`` is the weighted fraction of primary-routable training
    samples the rule assigns to the same side.
    """

    feature: int
    threshold: float
    less_goes_left: bool
    agreement: float


def find_surrogate_splits(
    X: np.ndarray,
    primary_left: np.ndarray,
    weights: np.ndarray,
    *,
    exclude_feature: int,
    max_surrogates: int = 3,
) -> tuple[SurrogateSplit, ...]:
    """Rank surrogate rules that mimic a primary split.

    Args:
        X: The node's sample matrix.
        primary_left: Boolean mask — the primary split's left assignment
            (only rows with a finite primary value should be passed).
        weights: Sample weights aligned with ``X``.
        exclude_feature: The primary split's feature (never a surrogate).
        max_surrogates: How many rules to keep (rpart default keeps up
            to 5; we default to 3).

    Returns surrogates sorted by agreement, best first; only rules that
    beat the majority-direction baseline are admitted.
    """
    if max_surrogates <= 0 or X.shape[0] == 0:
        return ()
    left_weight = float(weights[primary_left].sum())
    right_weight = float(weights[~primary_left].sum())
    total = left_weight + right_weight
    if total <= 0:
        return ()
    baseline = max(left_weight, right_weight) / total

    found: list[SurrogateSplit] = []
    for feature in range(X.shape[1]):
        if feature == exclude_feature:
            continue
        column = X[:, feature]
        finite = np.isfinite(column)
        if finite.sum() < 2:
            continue
        x = column[finite]
        is_left = primary_left[finite]
        w = weights[finite]
        observed = float(w.sum())
        if observed <= 0:
            continue

        order = np.argsort(x, kind="stable")
        x_sorted = x[order]
        boundaries = np.nonzero(x_sorted[:-1] < x_sorted[1:])[0]
        if boundaries.size == 0:
            continue
        left_w = np.where(is_left[order], w[order], 0.0)
        right_w = np.where(is_left[order], 0.0, w[order])
        cum_left = np.cumsum(left_w)
        cum_right = np.cumsum(right_w)
        total_left = cum_left[-1]
        total_right = cum_right[-1]

        # "x < thr goes left": matches = left-labeled below + right-labeled above.
        normal = cum_left[boundaries] + (total_right - cum_right[boundaries])
        # Reversed direction: the complement.
        reversed_ = cum_right[boundaries] + (total_left - cum_left[boundaries])

        best_normal = int(np.argmax(normal))
        best_reversed = int(np.argmax(reversed_))
        if normal[best_normal] >= reversed_[best_reversed]:
            boundary, matched, less_left = best_normal, normal[best_normal], True
        else:
            boundary, matched, less_left = best_reversed, reversed_[best_reversed], False
        agreement = float(matched) / observed
        if agreement <= baseline + 1e-12:
            continue
        index = boundaries[boundary]
        threshold = float((x_sorted[index] + x_sorted[index + 1]) / 2.0)
        found.append(
            SurrogateSplit(
                feature=int(feature),
                threshold=threshold,
                less_goes_left=less_left,
                agreement=agreement,
            )
        )

    found.sort(key=lambda s: s.agreement, reverse=True)
    return tuple(found[:max_surrogates])


def find_surrogate_splits_presorted(
    frontier_node: FrontierNode,
    X: np.ndarray,
    weights: np.ndarray,
    indices: np.ndarray,
    *,
    primary_feature: int,
    primary_threshold: float,
    max_surrogates: int = 3,
) -> tuple[SurrogateSplit, ...]:
    """Presorted surrogate search — :func:`find_surrogate_splits` without sorts.

    Reads each candidate feature's sorted order from the node's
    :class:`~repro.tree.frontier.FrontierNode` instead of argsorting it,
    and keeps every weight reduction in the reference's summation order
    so the admission test and agreement ranking are bit-identical.
    ``X``/``weights`` are the fit-wide arrays; ``indices`` the node's
    rows in ascending order.
    """
    if max_surrogates <= 0:
        return ()
    primary_column = X[indices, primary_feature]
    primary_finite = np.isfinite(primary_column)
    if int(primary_finite.sum()) < 2:
        return ()
    node_weights = weights[indices]
    primary_left = primary_column[primary_finite] < primary_threshold
    routable_weights = node_weights[primary_finite]
    left_weight = float(routable_weights[primary_left].sum())
    right_weight = float(routable_weights[~primary_left].sum())
    total = left_weight + right_weight
    if total <= 0:
        return ()
    baseline = max(left_weight, right_weight) / total

    marked_rows = indices[primary_finite]
    scratch = frontier_node.mark(marked_rows)
    # Row-id-indexed lookups: one scatter per node replaces a 2-D fancy
    # gather of the primary column per candidate feature, and one
    # scatter per feature replaces the candidate column's 2-D gather +
    # isfinite when recovering the row-order co-finite mask.
    left_lookup = np.zeros(X.shape[0], dtype=bool)
    left_lookup[marked_rows] = primary_left
    pair_lookup = np.zeros(X.shape[0], dtype=bool)
    found: list[SurrogateSplit] = []
    try:
        for feature in range(frontier_node.n_features):
            if feature == primary_feature:
                continue
            rows, vals = frontier_node.sorted_finite(feature)
            keep = scratch[rows]
            kept_rows = rows[keep]
            if kept_rows.size < 2:
                continue
            # Rows finite in both columns, in row order (the reference
            # sums the observed weight before sorting, so the summation
            # order matters).
            pair_lookup[kept_rows] = True
            finite_both = pair_lookup[indices]
            pair_lookup[kept_rows] = False
            observed = float(node_weights[finite_both].sum())
            if observed <= 0:
                continue

            x_sorted = vals[keep]
            boundaries = (x_sorted[:-1] < x_sorted[1:]).nonzero()[0]
            if boundaries.size == 0:
                continue
            is_left = left_lookup[kept_rows]
            w_sorted = weights[kept_rows]
            left_w = np.where(is_left, w_sorted, 0.0)
            right_w = np.where(is_left, 0.0, w_sorted)
            cum_left = left_w.cumsum()
            cum_right = right_w.cumsum()
            total_left = cum_left[-1]
            total_right = cum_right[-1]

            normal = cum_left[boundaries] + (total_right - cum_right[boundaries])
            reversed_ = cum_right[boundaries] + (total_left - cum_left[boundaries])

            best_normal = int(normal.argmax())
            best_reversed = int(reversed_.argmax())
            if normal[best_normal] >= reversed_[best_reversed]:
                boundary, matched, less_left = best_normal, normal[best_normal], True
            else:
                boundary, matched, less_left = best_reversed, reversed_[best_reversed], False
            agreement = float(matched) / observed
            if agreement <= baseline + 1e-12:
                continue
            index = boundaries[boundary]
            threshold = float((x_sorted[index] + x_sorted[index + 1]) / 2.0)
            found.append(
                SurrogateSplit(
                    feature=int(feature),
                    threshold=threshold,
                    less_goes_left=less_left,
                    agreement=agreement,
                )
            )
    finally:
        frontier_node.unmark(marked_rows)

    found.sort(key=lambda s: s.agreement, reverse=True)
    return tuple(found[:max_surrogates])


def route_left_with_surrogates(
    sample: np.ndarray,
    primary_feature: int,
    primary_threshold: float,
    surrogates: tuple[SurrogateSplit, ...],
    missing_goes_left: bool,
) -> bool:
    """Decide a single sample's branch using primary, surrogates, fallback."""
    value = sample[primary_feature]
    if np.isfinite(value):
        return bool(value < primary_threshold)
    for surrogate in surrogates:
        candidate = sample[surrogate.feature]
        if np.isfinite(candidate):
            goes_less = bool(candidate < surrogate.threshold)
            return goes_less if surrogate.less_goes_left else not goes_less
    return missing_goes_left
