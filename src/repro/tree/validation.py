"""Cross-validation and hyper-parameter search for the tree models.

rpart — the CART implementation behind the paper — selects its
Complexity Parameter by built-in cross-validation (the ``xval``
machinery).  This module provides the equivalent for our trees:
stratified k-fold splitting, a scorer-driven :func:`cross_validate`,
and :func:`grid_search` over arbitrary constructor-parameter grids,
which the ablation benchmark uses to justify the pipeline defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from itertools import product
from typing import Callable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.utils.parallel import run_tasks
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_2d, check_matching_length, check_positive

#: A scorer maps (model, X, y) -> float, larger is better.
Scorer = Callable[[object, np.ndarray, np.ndarray], float]


def accuracy_score(model: object, X: np.ndarray, y: np.ndarray) -> float:
    """Fraction of samples classified correctly."""
    return float(np.mean(model.predict(X) == y))


def weighted_error_score(
    false_alarm_cost: float = 10.0, failed_label: float = -1.0
) -> Scorer:
    """Negative cost-weighted error: the paper's asymmetric objective.

    A false alarm (good sample predicted failed) costs
    ``false_alarm_cost``; a missed detection costs 1.  Larger is better.
    """
    check_positive("false_alarm_cost", false_alarm_cost)

    def scorer(model: object, X: np.ndarray, y: np.ndarray) -> float:
        predicted = model.predict(X)
        false_alarm = (y != failed_label) & (predicted == failed_label)
        miss = (y == failed_label) & (predicted != failed_label)
        cost = false_alarm_cost * false_alarm.sum() + miss.sum()
        return -float(cost) / max(len(y), 1)

    return scorer


def neg_mean_squared_error(model: object, X: np.ndarray, y: np.ndarray) -> float:
    """Negative MSE, for regression trees."""
    residual = model.predict(X) - y
    return -float(np.mean(residual**2))


def stratified_kfold_indices(
    y: Sequence[object], n_folds: int, seed: RandomState = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class proportions kept.

    Classes with fewer members than folds still appear in every training
    split (their few members rotate through the test folds).
    """
    labels = np.asarray(y)
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if labels.shape[0] < n_folds:
        raise ValueError(
            f"cannot make {n_folds} folds from {labels.shape[0]} samples"
        )
    rng = as_rng(seed)
    fold_of = np.empty(labels.shape[0], dtype=int)
    for cls in np.unique(labels):
        members = np.nonzero(labels == cls)[0]
        members = members[rng.permutation(members.shape[0])]
        fold_of[members] = np.arange(members.shape[0]) % n_folds
    for fold in range(n_folds):
        test = np.nonzero(fold_of == fold)[0]
        train = np.nonzero(fold_of != fold)[0]
        if test.size == 0 or train.size == 0:
            continue
        yield train, test


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold scores plus their mean/std."""

    fold_scores: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean score across folds."""
        return float(np.mean(self.fold_scores))

    @property
    def std(self) -> float:
        """Population standard deviation of the fold scores."""
        return float(np.std(self.fold_scores))


def _fit_and_score_fold(context, task):
    """Fit one CV fold and score it (module-level for worker processes)."""
    model_factory, matrix, labels, weights, scorer = context
    train_idx, test_idx = task
    model = model_factory()
    if weights is None:
        model.fit(matrix[train_idx], labels[train_idx])
    else:
        model.fit(
            matrix[train_idx], labels[train_idx],
            sample_weight=weights[train_idx],
        )
    return scorer(model, matrix[test_idx], labels[test_idx])


def cross_validate(
    model_factory: Callable[[], object],
    X: object,
    y: Sequence[object],
    *,
    n_folds: int = 5,
    scorer: Scorer = accuracy_score,
    sample_weight: Optional[Sequence[float]] = None,
    seed: RandomState = 0,
    n_jobs: Optional[int] = None,
) -> CrossValidationResult:
    """Stratified k-fold cross-validation of a fit/predict model.

    Folds are independent, so ``n_jobs`` fans them out across worker
    processes (``None`` defers to ``REPRO_N_JOBS``; fold scores are
    identical at any setting — each fold's data is fixed up front, and a
    ``model_factory`` that cannot cross a process boundary, e.g. a
    lambda, silently falls back to the serial loop).
    """
    matrix = check_2d("X", X)
    labels = np.asarray(y)
    check_matching_length(("X", matrix), ("y", labels))
    weights = None if sample_weight is None else np.asarray(sample_weight, dtype=float)
    folds = list(stratified_kfold_indices(labels, n_folds, seed))
    if not folds:
        raise ValueError("cross-validation produced no usable folds")
    scores = run_tasks(
        _fit_and_score_fold,
        folds,
        n_jobs=n_jobs,
        context=(model_factory, matrix, labels, weights, scorer),
    )
    return CrossValidationResult(tuple(scores))


@dataclass(frozen=True)
class GridSearchResult:
    """Best parameters plus the full (params -> CV result) table."""

    best_params: Mapping[str, object]
    best_score: float
    table: tuple[tuple[Mapping[str, object], CrossValidationResult], ...]


def grid_search(
    model_class: Callable[..., object],
    param_grid: Mapping[str, Sequence[object]],
    X: object,
    y: Sequence[object],
    *,
    n_folds: int = 5,
    scorer: Scorer = accuracy_score,
    sample_weight: Optional[Sequence[float]] = None,
    seed: RandomState = 0,
    n_jobs: Optional[int] = None,
) -> GridSearchResult:
    """Exhaustive grid search with stratified k-fold CV.

    ``param_grid`` maps constructor-argument names to candidate values;
    the Cartesian product is evaluated and the mean-score winner
    returned (ties break toward the earlier grid point, so order the
    grid from simplest to most complex).  ``n_jobs`` parallelises the
    folds of each grid point (see :func:`cross_validate`).
    """
    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    names = list(param_grid)
    table = []
    best: Optional[tuple[Mapping[str, object], CrossValidationResult]] = None
    for values in product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        # functools.partial (unlike a lambda) crosses process boundaries,
        # keeping the fold fan-out available to worker pools.
        result = cross_validate(
            partial(model_class, **params),
            X, y,
            n_folds=n_folds, scorer=scorer,
            sample_weight=sample_weight, seed=seed, n_jobs=n_jobs,
        )
        table.append((params, result))
        if best is None or result.mean > best[1].mean:
            best = (params, result)
    return GridSearchResult(
        best_params=best[0], best_score=best[1].mean, table=tuple(table)
    )
