"""Impurity criteria for tree induction.

The paper's Classification Tree (Algorithm 1) splits on *information
gain* (formulas 1-3) and its Regression Tree (Algorithm 2) splits on the
*within-node sum of squares* (formula 4).  This module implements both,
plus Gini impurity as a drop-in alternative criterion, all on weighted
class counts so the paper's sample re-weighting strategies (boosting the
failed class to a 20% share, 10x loss weight on false alarms) plug in
without special-casing.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d


def entropy(class_weights: np.ndarray) -> float:
    """Shannon entropy (bits) of a node, formula (2) generalised to weights.

    ``class_weights`` holds the total sample weight per class at the node.
    Zero-weight classes contribute zero (the ``p log p`` limit), and an
    empty node has zero entropy by convention.
    """
    weights = np.asarray(class_weights, dtype=float)
    if np.any(weights < 0):
        raise ValueError(f"class weights must be non-negative, got {weights!r}")
    total = weights.sum()
    if total <= 0:
        return 0.0
    probs = weights / total
    # Filter after normalising: a denormal weight can underflow to a
    # zero probability, and 0 * log(0) must contribute nothing.
    probs = probs[probs > 0]
    return float(-np.sum(probs * np.log2(probs)))


def gini(class_weights: np.ndarray) -> float:
    """Gini impurity of a node (alternative criterion, not used by the paper)."""
    weights = np.asarray(class_weights, dtype=float)
    if np.any(weights < 0):
        raise ValueError(f"class weights must be non-negative, got {weights!r}")
    total = weights.sum()
    if total <= 0:
        return 0.0
    probs = weights / total
    return float(1.0 - np.sum(probs**2))


def information_gain(
    parent_weights: np.ndarray,
    left_weights: np.ndarray,
    right_weights: np.ndarray,
) -> float:
    """Information gain of a binary split, formulas (1) and (3).

    ``gain = info(D) - (|D1|/|D|) info(D1) - (|D2|/|D|) info(D2)`` where
    node sizes are measured in total sample weight.
    """
    parent = np.asarray(parent_weights, dtype=float)
    left = np.asarray(left_weights, dtype=float)
    right = np.asarray(right_weights, dtype=float)
    total = parent.sum()
    if total <= 0:
        return 0.0
    split_info = (
        left.sum() / total * entropy(left) + right.sum() / total * entropy(right)
    )
    return entropy(parent) - split_info


def sum_of_squares(targets: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted within-node sum of squares about the mean, formula (4)."""
    y = check_1d("targets", targets)
    if y.size == 0:
        return 0.0
    if weights is None:
        mean = float(y.mean())
        return float(np.sum((y - mean) ** 2))
    w = check_1d("weights", weights)
    if w.shape != y.shape:
        raise ValueError("targets and weights must have equal length")
    total = w.sum()
    if total <= 0:
        return 0.0
    mean = float(np.sum(w * y) / total)
    return float(np.sum(w * (y - mean) ** 2))


CLASSIFICATION_CRITERIA = {"entropy": entropy, "gini": gini}


def node_impurity(criterion: str, class_weights: np.ndarray) -> float:
    """Dispatch to a named classification impurity function."""
    try:
        func = CLASSIFICATION_CRITERIA[criterion]
    except KeyError:
        raise ValueError(
            f"criterion must be one of {sorted(CLASSIFICATION_CRITERIA)}, got {criterion!r}"
        ) from None
    return func(class_weights)
