"""Shared per-member resampling for the bagged ensembles.

:class:`~repro.tree.forest.RandomForestClassifier` and
:class:`~repro.tree.forest_regression.RandomForestRegressor` draw each
member's training view the same way: a bootstrap row resample followed
by an optional per-tree feature mask (inactive columns NaN-ed out, so
member trees stay byte-identical to the paper's CT/RT implementation —
they simply never see a splittable value there).  This module holds that
block once; both forests and their process-parallel fit workers call it.
"""

from __future__ import annotations

import numpy as np


def subsample_member_inputs(
    tree_rng: np.random.Generator,
    matrix: np.ndarray,
    *,
    n_active: int,
    bootstrap: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw one ensemble member's training view of ``matrix``.

    Consumes ``tree_rng`` in a fixed order — bootstrap rows first, then
    the feature subset — so a member's draw depends only on its own
    generator, never on sibling members or scheduling.  Returns
    ``(inputs, rows, active)``: the member's (masked) feature matrix,
    the sampled row indices (for slicing targets/weights), and the
    sorted active-feature indices.  When every feature is active no mask
    is built (and no feature draw is consumed; nothing later reads the
    generator, so fitted members are unchanged either way).
    """
    n_rows, n_features = matrix.shape
    rows = (
        tree_rng.integers(0, n_rows, size=n_rows)
        if bootstrap
        else np.arange(n_rows)
    )
    inputs = matrix[rows]
    if n_active < n_features:
        active = np.sort(tree_rng.choice(n_features, size=n_active, replace=False))
        masked = np.full_like(inputs, np.nan)
        masked[:, active] = inputs[:, active]
        inputs = masked
    else:
        active = np.arange(n_features)
    return inputs, rows, active
