"""Random forest over the paper's CART trees.

The paper's future-work section names random forests as the next model to
try for boosting prediction performance; this module provides that
extension so the ablation benchmark can compare a single CT against an
ensemble under identical training protocols.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.tree.bagging import subsample_member_inputs
from repro.tree.base import ServingScorerMixin
from repro.tree.classification import ClassificationTree, ClassWeight
from repro.tree.compiled import CompiledForest
from repro.utils.parallel import run_tasks
from repro.utils.rng import RandomState, as_rng, spawn_child
from repro.utils.validation import check_2d, check_matching_length


def _fit_member(context, task):
    """Fit one forest member (module-level so worker processes can call it)."""
    matrix, labels, weights, tree_params, bootstrap, n_active = context
    index, tree_rng = task
    inputs, rows, active = subsample_member_inputs(
        tree_rng, matrix, n_active=n_active, bootstrap=bootstrap
    )
    tree = ClassificationTree(**tree_params)
    tree.fit(
        inputs,
        labels[rows],
        sample_weight=None if weights is None else weights[rows],
    )
    return tree, active


class RandomForestClassifier(ServingScorerMixin):
    """Bagged ensemble of :class:`ClassificationTree` with feature subsampling.

    Args:
        n_trees: Ensemble size.
        max_features: Features examined per split: ``"sqrt"``, an int, or
            ``None`` for all features (plain bagging).
        minsplit/minbucket/cp/criterion/class_weight/loss_matrix/max_depth:
            Forwarded to every member tree (paper-default values).
        bootstrap: Sample rows with replacement per tree when True.
        seed: Seed / generator for reproducible resampling.
        backend: ``"compiled"`` (default) stacks the members into one
            :class:`~repro.tree.compiled.CompiledForest` and scores every
            (tree, row) lane in a single vectorised pass; ``"node"``
            loops the reference per-tree object-graph walk.
        n_jobs: Worker processes for fitting members (``None`` defers to
            ``REPRO_N_JOBS``, default serial; ``0``/negative = all
            cores).  Fitted members are identical at any ``n_jobs`` —
            each member's randomness is spawned per-task from ``seed``.
    """

    def __init__(
        self,
        n_trees: int = 30,
        max_features: object = "sqrt",
        minsplit: int = 20,
        minbucket: int = 7,
        cp: float = 0.001,
        criterion: str = "entropy",
        class_weight: ClassWeight = None,
        loss_matrix: Optional[Sequence[Sequence[float]]] = None,
        max_depth: Optional[int] = None,
        bootstrap: bool = True,
        seed: RandomState = None,
        backend: str = "compiled",
        n_jobs: Optional[int] = None,
    ):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = int(n_trees)
        self.max_features = max_features
        self.backend = backend
        self.tree_params = dict(
            minsplit=minsplit,
            minbucket=minbucket,
            cp=cp,
            criterion=criterion,
            class_weight=class_weight,
            loss_matrix=loss_matrix,
            max_depth=max_depth,
            backend=backend,
        )
        self.bootstrap = bool(bootstrap)
        self.seed = seed
        self.n_jobs = n_jobs
        self.trees_: list[ClassificationTree] = []
        self.classes_: Optional[np.ndarray] = None
        self._compiled_forest: Optional[CompiledForest] = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        count = int(self.max_features)
        if not 1 <= count <= n_features:
            raise ValueError(
                f"max_features must be in [1, {n_features}], got {self.max_features!r}"
            )
        return count

    def fit(
        self,
        X: object,
        y: Sequence[object],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "RandomForestClassifier":
        """Fit ``n_trees`` trees on bootstrap resamples with feature masking.

        Feature subsampling is approximated per-tree rather than
        per-split: each member sees a random feature subset via masked
        (NaN-ed out) columns, which keeps the member trees byte-identical
        to the paper's CT implementation.
        """
        matrix = check_2d("X", X)
        labels = np.asarray(y)
        check_matching_length(("X", matrix), ("y", labels))
        rng = as_rng(self.seed)
        n_active = self._resolve_max_features(matrix.shape[1])
        weights = None if sample_weight is None else np.asarray(sample_weight, dtype=float)

        # Each member's randomness is spawned per-task from the forest
        # seed (consumption-independent), so members are identical
        # whether fitted serially or across worker processes.
        context = (matrix, labels, weights, self.tree_params, self.bootstrap, n_active)
        tasks = [(index, spawn_child(rng, index)) for index in range(self.n_trees)]
        members = run_tasks(_fit_member, tasks, n_jobs=self.n_jobs, context=context)
        self.trees_ = [tree for tree, _ in members]
        self._feature_masks = [active for _, active in members]
        self.classes_ = np.unique(labels)
        self._compiled_forest = None
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier is not fitted; call fit() first")

    def _batch_predictions(self, matrix: np.ndarray) -> np.ndarray:
        """Member predictions stacked ``(n_trees, n_rows)``; one routing pass."""
        if self._compiled_forest is None:
            self._compiled_forest = CompiledForest(
                [tree.compiled_ for tree in self.trees_]
            )
        return self._compiled_forest.predict_matrix(matrix)

    def predict_proba(self, X: object) -> np.ndarray:
        """Ensemble-averaged class probabilities."""
        self._check_fitted()
        matrix = check_2d("X", X)
        if self.backend == "compiled":
            predictions = self._batch_predictions(matrix)
            votes = (predictions[:, :, None] == self.classes_[None, None, :]).sum(
                axis=0, dtype=float
            )
            return votes / len(self.trees_)
        votes = np.zeros((matrix.shape[0], len(self.classes_)), dtype=float)
        for tree in self.trees_:
            predictions = tree.predict(matrix)
            for column, cls in enumerate(self.classes_):
                votes[:, column] += predictions == cls
        return votes / len(self.trees_)

    def predict(self, X: object) -> np.ndarray:
        """Majority-vote class labels."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
