"""Persistence for fitted models (JSON).

A monitoring daemon trains on one machine and scores on many; models
must round-trip through storage byte-exactly.  Trees serialise to a
plain-JSON document (human-inspectable — the interpretability story
extends to the artefact on disk); the BP ANN serialises its weight
matrices as nested lists.  ``save_model``/``load_model`` dispatch on a
``kind`` tag so deployment code can reload any supported model without
knowing its class up front.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.ann.network import BPNeuralNetwork
from repro.tree.classification import ClassificationTree
from repro.tree.compiled import CompiledTree
from repro.tree.node import Node
from repro.tree.regression import RegressionTree
from repro.tree.surrogates import SurrogateSplit

FORMAT_VERSION = 1


def _compiled_payload(tree) -> dict:
    """The tree's flat-array form (compiling first if backend is lazy)."""
    if tree.compiled_ is None:
        tree.recompile()
    return tree.compiled_.to_dict()


def _restore_compiled(tree, payload: dict) -> None:
    """Attach the serialised flat arrays, or rebuild them from the graph.

    Payloads written before the compiled backend existed lack the
    ``compiled`` section; those recompile from the node graph, which is
    lossless because the arrays are a pure function of the graph.
    """
    compiled = payload.get("compiled")
    if compiled is not None:
        tree.compiled_ = CompiledTree.from_dict(compiled)
    else:
        tree.recompile()


def _node_to_dict(node: Node) -> dict:
    payload = {
        "node_id": node.node_id,
        "depth": node.depth,
        "n_samples": node.n_samples,
        "weight": node.weight,
        "prediction": node.prediction,
        "impurity": node.impurity,
        "gain": node.gain,
    }
    if node.class_distribution is not None:
        payload["class_distribution"] = node.class_distribution.tolist()
    if not node.is_leaf:
        payload.update(
            feature=node.feature,
            threshold=node.threshold,
            missing_goes_left=node.missing_goes_left,
            surrogates=[
                {
                    "feature": s.feature,
                    "threshold": s.threshold,
                    "less_goes_left": s.less_goes_left,
                    "agreement": s.agreement,
                }
                for s in node.surrogates
            ],
            left=_node_to_dict(node.left),
            right=_node_to_dict(node.right),
        )
    return payload


def _node_from_dict(payload: dict) -> Node:
    distribution = payload.get("class_distribution")
    node = Node(
        node_id=int(payload["node_id"]),
        depth=int(payload["depth"]),
        n_samples=int(payload["n_samples"]),
        weight=float(payload["weight"]),
        prediction=float(payload["prediction"]),
        impurity=float(payload["impurity"]),
        class_distribution=None if distribution is None else np.asarray(distribution),
        gain=float(payload.get("gain", 0.0)),
    )
    if "feature" in payload:
        node.feature = int(payload["feature"])
        node.threshold = float(payload["threshold"])
        node.missing_goes_left = bool(payload["missing_goes_left"])
        node.surrogates = tuple(
            SurrogateSplit(
                feature=int(s["feature"]),
                threshold=float(s["threshold"]),
                less_goes_left=bool(s["less_goes_left"]),
                agreement=float(s["agreement"]),
            )
            for s in payload.get("surrogates", [])
        )
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


def classification_tree_to_dict(tree: ClassificationTree) -> dict:
    """Serialise a fitted classification tree to a JSON-able dict."""
    root = tree._check_fitted()
    return {
        "kind": "classification_tree",
        "version": FORMAT_VERSION,
        "params": {
            "minsplit": tree.minsplit,
            "minbucket": tree.minbucket,
            "cp": tree.cp,
            "criterion": tree.criterion,
            "max_depth": tree.max_depth,
            "n_surrogates": tree.n_surrogates,
            "backend": tree.backend,
            "presort": tree.presort,
        },
        "classes": np.asarray(tree.classes_).tolist(),
        "n_features": tree.n_features_,
        "loss_matrix": None if tree.loss_matrix is None else tree.loss_matrix.tolist(),
        "root": _node_to_dict(root),
        "compiled": _compiled_payload(tree),
    }


def classification_tree_from_dict(payload: dict) -> ClassificationTree:
    """Rebuild a fitted classification tree from its dict form."""
    _check_payload(payload, "classification_tree")
    params = payload["params"]
    tree = ClassificationTree(
        minsplit=params["minsplit"],
        minbucket=params["minbucket"],
        cp=params["cp"],
        criterion=params["criterion"],
        loss_matrix=payload.get("loss_matrix"),
        max_depth=params["max_depth"],
        n_surrogates=params.get("n_surrogates", 0),
        backend=params.get("backend", "compiled"),
        presort=params.get("presort", True),
    )
    tree.classes_ = np.asarray(payload["classes"])
    tree.n_features_ = int(payload["n_features"])
    tree.root_ = _node_from_dict(payload["root"])
    _restore_compiled(tree, payload)
    return tree


def regression_tree_to_dict(tree: RegressionTree) -> dict:
    """Serialise a fitted regression tree to a JSON-able dict."""
    root = tree._check_fitted()
    return {
        "kind": "regression_tree",
        "version": FORMAT_VERSION,
        "params": {
            "minsplit": tree.minsplit,
            "minbucket": tree.minbucket,
            "cp": tree.cp,
            "max_depth": tree.max_depth,
            "n_surrogates": tree.n_surrogates,
            "backend": tree.backend,
            "presort": tree.presort,
        },
        "n_features": tree.n_features_,
        "root": _node_to_dict(root),
        "compiled": _compiled_payload(tree),
    }


def regression_tree_from_dict(payload: dict) -> RegressionTree:
    """Rebuild a fitted regression tree from its dict form."""
    _check_payload(payload, "regression_tree")
    params = payload["params"]
    tree = RegressionTree(
        minsplit=params["minsplit"],
        minbucket=params["minbucket"],
        cp=params["cp"],
        max_depth=params["max_depth"],
        n_surrogates=params.get("n_surrogates", 0),
        backend=params.get("backend", "compiled"),
        presort=params.get("presort", True),
    )
    tree.n_features_ = int(payload["n_features"])
    tree.root_ = _node_from_dict(payload["root"])
    _restore_compiled(tree, payload)
    return tree


def network_to_dict(network: BPNeuralNetwork) -> dict:
    """Serialise a fitted BP ANN to a JSON-able dict."""
    network._check_fitted()
    return {
        "kind": "bp_network",
        "version": FORMAT_VERSION,
        "params": {
            "hidden_sizes": list(network.hidden_sizes),
            "learning_rate": network.learning_rate,
            "max_iter": network.max_iter,
            "batch_size": network.batch_size,
            "activation": network.activation.name,
            "output_activation": network.output_activation.name,
            "scaling": network.scaling,
            "tol": network.tol,
        },
        "n_features": network.n_features_,
        "weights": [w.tolist() for w in network.weights_],
        "biases": [b.tolist() for b in network.biases_],
        "scaler_mean": network._mean.tolist(),
        "scaler_scale": network._scale.tolist(),
    }


def network_from_dict(payload: dict) -> BPNeuralNetwork:
    """Rebuild a fitted BP ANN from its dict form."""
    _check_payload(payload, "bp_network")
    params = payload["params"]
    network = BPNeuralNetwork(
        hidden_sizes=params["hidden_sizes"],
        learning_rate=params["learning_rate"],
        max_iter=params["max_iter"],
        batch_size=params["batch_size"],
        activation=params["activation"],
        output_activation=params["output_activation"],
        scaling=params["scaling"],
        tol=params["tol"],
    )
    network.n_features_ = int(payload["n_features"])
    network.weights_ = [np.asarray(w) for w in payload["weights"]]
    network.biases_ = [np.asarray(b) for b in payload["biases"]]
    network._mean = np.asarray(payload["scaler_mean"])
    network._scale = np.asarray(payload["scaler_scale"])
    return network


_SERIALIZERS = {
    ClassificationTree: classification_tree_to_dict,
    RegressionTree: regression_tree_to_dict,
    BPNeuralNetwork: network_to_dict,
}

_DESERIALIZERS = {
    "classification_tree": classification_tree_from_dict,
    "regression_tree": regression_tree_from_dict,
    "bp_network": network_from_dict,
}


def _check_payload(payload: dict, expected_kind: str) -> None:
    kind = payload.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} payload, got kind={kind!r}")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported serialization version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )


def save_model(
    path: Union[str, Path],
    model: object,
    *,
    feature_names: Optional[list[str]] = None,
) -> None:
    """Write a fitted model (tree or network) to a JSON file.

    ``feature_names`` are stored alongside the model so the loader can
    check that scoring-time features match training-time features.
    """
    serializer = None
    for model_type, func in _SERIALIZERS.items():
        if isinstance(model, model_type):
            serializer = func
            break
    if serializer is None:
        raise TypeError(
            f"cannot serialise {type(model).__name__}; supported: "
            f"{', '.join(t.__name__ for t in _SERIALIZERS)}"
        )
    payload = serializer(model)
    if feature_names is not None:
        payload["feature_names"] = list(feature_names)
    Path(path).write_text(json.dumps(payload, indent=1))


def load_model(path: Union[str, Path]) -> tuple[object, Optional[list[str]]]:
    """Load a model written by :func:`save_model`.

    Returns ``(model, feature_names)``; feature names are ``None`` when
    they were not stored.
    """
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise ValueError(
            f"unknown model kind {kind!r}; supported: {sorted(_DESERIALIZERS)}"
        )
    return deserializer(payload), payload.get("feature_names")
