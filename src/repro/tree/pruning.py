"""Cost-complexity (weakest-link) pruning.

The paper prunes with a flat CP threshold (Algorithm 1/2 lines 18-22,
implemented inside :mod:`repro.tree.base`).  This module adds the full
Breiman et al. cost-complexity pruning *path* as an extension: the nested
sequence of subtrees indexed by the complexity penalty alpha, which the
ablation benchmark uses to study how tree size trades off against
detection performance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.tree.base import BaseDecisionTree
from repro.tree.node import Node
from repro.tree.validation import Scorer, accuracy_score, stratified_kfold_indices
from repro.utils.parallel import run_tasks
from repro.utils.rng import RandomState


def _node_risk(node: Node) -> float:
    """Training risk of collapsing ``node`` into a leaf.

    Classification nodes use weight-scaled impurity; regression impurity
    (SSE) is already weight-aggregated.
    """
    if node.class_distribution is not None:
        return node.impurity * node.weight
    return node.impurity


def _subtree_risk(node: Node) -> float:
    """Sum of leaf risks over the subtree rooted at ``node``."""
    return sum(_node_risk(leaf) for leaf in node.iter_nodes() if leaf.is_leaf)


def _weakest_link(root: Node) -> tuple[float, Node] | None:
    """The internal node with the smallest alpha = (R(t) - R(T_t)) / (|T_t| - 1)."""
    best: tuple[float, Node] | None = None
    for node in root.iter_nodes():
        if node.is_leaf:
            continue
        leaves = node.count_leaves()
        alpha = (_node_risk(node) - _subtree_risk(node)) / (leaves - 1)
        if best is None or alpha < best[0]:
            best = (alpha, node)
    return best


@dataclass(frozen=True)
class PruningStep:
    """One entry of the cost-complexity path."""

    alpha: float
    n_leaves: int


def cost_complexity_path(tree: BaseDecisionTree) -> list[PruningStep]:
    """The sequence of (alpha, leaf-count) steps from the full tree to a stump.

    The first step always has ``alpha = 0`` (the unpruned tree); each
    following step records the penalty at which the next weakest link
    collapses.  Alphas are non-decreasing along the path.
    """
    root = copy.deepcopy(tree._check_fitted())
    path = [PruningStep(0.0, root.count_leaves())]
    while not root.is_leaf:
        found = _weakest_link(root)
        if found is None:
            break
        alpha, node = found
        node.make_leaf()
        path.append(PruningStep(max(alpha, path[-1].alpha), root.count_leaves()))
    return path


def prune_to_alpha(tree: BaseDecisionTree, alpha: float) -> BaseDecisionTree:
    """Return a copy of ``tree`` pruned with complexity penalty ``alpha``.

    Repeatedly collapses the weakest link while its alpha is at most the
    requested penalty, producing the optimal subtree for that penalty.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    tree._check_fitted()
    pruned = copy.deepcopy(tree)
    root = pruned.root_
    while not root.is_leaf:
        found = _weakest_link(root)
        if found is None or found[0] > alpha:
            break
        found[1].make_leaf()
    # The deep copy carries the original's compiled arrays; rebuild them
    # so the flat-array backend reflects the pruned graph.
    pruned.recompile()
    return pruned


@dataclass(frozen=True)
class AlphaSearchResult:
    """Cross-validated alpha selection over a cost-complexity path.

    ``fold_scores[i][j]`` is fold ``i``'s score at ``alphas[j]``;
    ``mean_scores`` averages over folds; ``best_alpha`` is the winner
    (ties break toward the larger alpha, i.e. the smaller tree —
    rpart's preference).
    """

    best_alpha: float
    alphas: tuple[float, ...]
    mean_scores: tuple[float, ...]
    fold_scores: tuple[tuple[float, ...], ...]


def _score_fold_path(context, task):
    """Score one CV fold along every candidate alpha (module-level so
    worker processes can call it)."""
    model_factory, matrix, labels, weights, alphas, scorer = context
    train_idx, test_idx = task
    model = model_factory()
    if weights is None:
        model.fit(matrix[train_idx], labels[train_idx])
    else:
        model.fit(
            matrix[train_idx], labels[train_idx],
            sample_weight=weights[train_idx],
        )
    return tuple(
        scorer(prune_to_alpha(model, alpha), matrix[test_idx], labels[test_idx])
        for alpha in alphas
    )


def cross_validated_alpha(
    model_factory: Callable[[], BaseDecisionTree],
    X: object,
    y: Sequence[object],
    *,
    n_folds: int = 5,
    scorer: Scorer = accuracy_score,
    sample_weight: Optional[Sequence[float]] = None,
    seed: RandomState = 0,
    n_jobs: Optional[int] = None,
) -> AlphaSearchResult:
    """Select the pruning penalty by k-fold cross-validation.

    The rpart ``xval`` analogue for the cost-complexity path: the
    candidate alphas come from the path of a tree fitted on the full
    data, then each fold fits its own tree, prunes it at every
    candidate, and scores on the held-out fold.  The alpha with the best
    mean score wins; exact ties go to the larger alpha (smaller tree).

    Folds are independent, so ``n_jobs`` fans them out across worker
    processes (``None`` defers to ``REPRO_N_JOBS``).  The selected
    alpha is identical at any setting — each fold's rows are fixed up
    front, and unpicklable factories fall back to the serial loop.
    """
    matrix = np.asarray(X, dtype=float)
    labels = np.asarray(y)
    weights = None if sample_weight is None else np.asarray(sample_weight, dtype=float)

    master = model_factory()
    if weights is None:
        master.fit(matrix, labels)
    else:
        master.fit(matrix, labels, sample_weight=weights)
    alphas = tuple(dict.fromkeys(step.alpha for step in cost_complexity_path(master)))

    folds = list(stratified_kfold_indices(labels, n_folds, seed))
    if not folds:
        raise ValueError("cross-validation produced no usable folds")
    fold_scores = run_tasks(
        _score_fold_path,
        folds,
        n_jobs=n_jobs,
        context=(model_factory, matrix, labels, weights, alphas, scorer),
    )
    mean_scores = tuple(float(np.mean(column)) for column in zip(*fold_scores))
    best_index = 0
    for index, mean in enumerate(mean_scores):
        if mean >= mean_scores[best_index]:
            best_index = index
    return AlphaSearchResult(
        best_alpha=alphas[best_index],
        alphas=alphas,
        mean_scores=mean_scores,
        fold_scores=tuple(fold_scores),
    )
