"""Cost-complexity (weakest-link) pruning.

The paper prunes with a flat CP threshold (Algorithm 1/2 lines 18-22,
implemented inside :mod:`repro.tree.base`).  This module adds the full
Breiman et al. cost-complexity pruning *path* as an extension: the nested
sequence of subtrees indexed by the complexity penalty alpha, which the
ablation benchmark uses to study how tree size trades off against
detection performance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.tree.base import BaseDecisionTree
from repro.tree.node import Node


def _node_risk(node: Node) -> float:
    """Training risk of collapsing ``node`` into a leaf.

    Classification nodes use weight-scaled impurity; regression impurity
    (SSE) is already weight-aggregated.
    """
    if node.class_distribution is not None:
        return node.impurity * node.weight
    return node.impurity


def _subtree_risk(node: Node) -> float:
    """Sum of leaf risks over the subtree rooted at ``node``."""
    return sum(_node_risk(leaf) for leaf in node.iter_nodes() if leaf.is_leaf)


def _weakest_link(root: Node) -> tuple[float, Node] | None:
    """The internal node with the smallest alpha = (R(t) - R(T_t)) / (|T_t| - 1)."""
    best: tuple[float, Node] | None = None
    for node in root.iter_nodes():
        if node.is_leaf:
            continue
        leaves = node.count_leaves()
        alpha = (_node_risk(node) - _subtree_risk(node)) / (leaves - 1)
        if best is None or alpha < best[0]:
            best = (alpha, node)
    return best


@dataclass(frozen=True)
class PruningStep:
    """One entry of the cost-complexity path."""

    alpha: float
    n_leaves: int


def cost_complexity_path(tree: BaseDecisionTree) -> list[PruningStep]:
    """The sequence of (alpha, leaf-count) steps from the full tree to a stump.

    The first step always has ``alpha = 0`` (the unpruned tree); each
    following step records the penalty at which the next weakest link
    collapses.  Alphas are non-decreasing along the path.
    """
    root = copy.deepcopy(tree._check_fitted())
    path = [PruningStep(0.0, root.count_leaves())]
    while not root.is_leaf:
        found = _weakest_link(root)
        if found is None:
            break
        alpha, node = found
        node.make_leaf()
        path.append(PruningStep(max(alpha, path[-1].alpha), root.count_leaves()))
    return path


def prune_to_alpha(tree: BaseDecisionTree, alpha: float) -> BaseDecisionTree:
    """Return a copy of ``tree`` pruned with complexity penalty ``alpha``.

    Repeatedly collapses the weakest link while its alpha is at most the
    requested penalty, producing the optimal subtree for that penalty.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    tree._check_fitted()
    pruned = copy.deepcopy(tree)
    root = pruned.root_
    while not root.is_leaf:
        found = _weakest_link(root)
        if found is None or found[0] > alpha:
            break
        found[1].make_leaf()
    # The deep copy carries the original's compiled arrays; rebuild them
    # so the flat-array backend reflects the pruned graph.
    pruned.recompile()
    return pruned
