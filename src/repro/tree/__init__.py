"""CART substrate: the paper's Classification Tree and Regression Tree.

Public surface:

* :class:`ClassificationTree` — Algorithm 1 (information-gain CART with
  Minsplit/Minbucket/CP and the paper's weighting strategies).
* :class:`RegressionTree` — Algorithm 2 (sum-of-squares CART).
* :func:`weights_for_priors` — the 20%/80% class re-balancing helper.
* :mod:`~repro.tree.export` — Figure-1-style rendering and rule mining.
* :class:`RandomForestClassifier` / :class:`AdaBoostClassifier` —
  ensemble extensions named by the paper's future/related work.
* :class:`CompiledTree` / :class:`CompiledForest` — the flat-array
  inference backend (fleet-scale batch scoring); every fitted tree
  carries one, and ``backend="node"`` falls back to the Figure-1
  object-graph walk.
"""

from repro.tree.bagging import subsample_member_inputs
from repro.tree.base import ServingScorerMixin
from repro.tree.boosting import AdaBoostClassifier
from repro.tree.classification import ClassificationTree, weights_for_priors
from repro.tree.compiled import CompiledForest, CompiledTree, compile_tree
from repro.tree.criteria import entropy, gini, information_gain, sum_of_squares
from repro.tree.export import export_text, extract_rules, failure_signature
from repro.tree.forest import RandomForestClassifier
from repro.tree.forest_regression import RandomForestRegressor
from repro.tree.frontier import TrainingFrontier
from repro.tree.node import Node
from repro.tree.pruning import (
    AlphaSearchResult,
    cost_complexity_path,
    cross_validated_alpha,
    prune_to_alpha,
)
from repro.tree.regression import RegressionTree
from repro.tree.serialization import load_model, save_model
from repro.tree.surrogates import SurrogateSplit, find_surrogate_splits
from repro.tree.validation import (
    CrossValidationResult,
    GridSearchResult,
    accuracy_score,
    cross_validate,
    grid_search,
    neg_mean_squared_error,
    stratified_kfold_indices,
    weighted_error_score,
)

__all__ = [
    "AdaBoostClassifier",
    "ServingScorerMixin",
    "AlphaSearchResult",
    "CrossValidationResult",
    "GridSearchResult",
    "accuracy_score",
    "cross_validate",
    "grid_search",
    "neg_mean_squared_error",
    "stratified_kfold_indices",
    "weighted_error_score",
    "SurrogateSplit",
    "find_surrogate_splits",
    "load_model",
    "save_model",
    "ClassificationTree",
    "CompiledForest",
    "CompiledTree",
    "compile_tree",
    "Node",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RegressionTree",
    "TrainingFrontier",
    "cost_complexity_path",
    "cross_validated_alpha",
    "entropy",
    "export_text",
    "extract_rules",
    "failure_signature",
    "gini",
    "information_gain",
    "prune_to_alpha",
    "subsample_member_inputs",
    "sum_of_squares",
    "weights_for_priors",
]
